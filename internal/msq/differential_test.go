package msq

import (
	"fmt"
	"math/rand"
	"testing"

	"metricdb/internal/engine"
	"metricdb/internal/obs"
	"metricdb/internal/pivot"
	"metricdb/internal/pmtree"
	"metricdb/internal/query"
	"metricdb/internal/scan"
	"metricdb/internal/store"
	"metricdb/internal/vafile"
	"metricdb/internal/vec"
	"metricdb/internal/xtree"
)

// The differential harness proves the pipeline's determinism claim: for
// every (engine × metric × avoidance mode) combination and a mixed k-NN /
// range / bounded-k-NN batch, running at Concurrency 1, 2 and 8 must give
//
//   - byte-identical answers (exact float equality — the same distance
//     calculations are performed in the same item order, so not even
//     rounding may differ),
//   - identical page-read counts, page visits, and the identical
//     sequential/random split of the simulated disk, and
//   - identical buffer hit/miss counts.
//
// DistCalcs/Avoided may differ between width 1 (live bounds) and widths
// >= 2 (page-start snapshot bounds), but must be identical among all
// widths >= 2 — and identical across every width when avoidance is off.

// diffMaker builds a fresh engine over its own disk and buffer, so the
// I/O counters of independent runs are comparable.
type diffMaker struct {
	name string
	make func(t *testing.T, items []store.Item, dim int, m vec.Metric) engine.Engine
}

func diffMakers() []diffMaker {
	return []diffMaker{
		{"scan", func(t *testing.T, items []store.Item, dim int, m vec.Metric) engine.Engine {
			t.Helper()
			e, err := scan.New(items, 16, 4)
			if err != nil {
				t.Fatal(err)
			}
			return e
		}},
		{"xtree", func(t *testing.T, items []store.Item, dim int, m vec.Metric) engine.Engine {
			t.Helper()
			e, err := xtree.Bulk(items, dim, xtree.Config{LeafCapacity: 16, DirFanout: 8, BufferPages: 4, Metric: m})
			if err != nil {
				t.Fatal(err)
			}
			return e
		}},
		{"vafile", func(t *testing.T, items []store.Item, dim int, m vec.Metric) engine.Engine {
			t.Helper()
			e, err := vafile.New(items, vafile.Config{PageCapacity: 16, BufferPages: 4, Metric: m})
			if err != nil {
				t.Fatal(err)
			}
			return e
		}},
		{"pivot", func(t *testing.T, items []store.Item, dim int, m vec.Metric) engine.Engine {
			t.Helper()
			e, err := pivot.New(items, pivot.Config{PageCapacity: 16, BufferPages: 4, Pivots: 8, Metric: m})
			if err != nil {
				t.Fatal(err)
			}
			return e
		}},
		{"pmtree", func(t *testing.T, items []store.Item, dim int, m vec.Metric) engine.Engine {
			t.Helper()
			e, err := pmtree.New(items, pmtree.Config{PageCapacity: 16, BufferPages: 4, Pivots: 8, Metric: m})
			if err != nil {
				t.Fatal(err)
			}
			return e
		}},
	}
}

// diffBatch builds a mixed workload. The first query is a range query so
// that the suffix evaluation of MultiQueryAll exercises both prefetch
// floors: the ε floor (range first) on the first pass and the zero floor
// (k-NN first) on later passes.
func diffBatch(dim int, seed int64) []Query {
	rng := rand.New(rand.NewSource(seed))
	point := func() vec.Vector {
		v := make(vec.Vector, dim)
		for j := range v {
			v[j] = rng.Float64()
		}
		return v
	}
	return []Query{
		{ID: 0, Vec: point(), Type: query.NewRange(0.55)},
		{ID: 1, Vec: point(), Type: query.NewKNN(10)},
		{ID: 2, Vec: point(), Type: query.NewBoundedKNN(5, 0.8)},
		{ID: 3, Vec: point(), Type: query.NewKNN(3)},
		{ID: 4, Vec: point(), Type: query.NewRange(0.4)},
		{ID: 5, Vec: point(), Type: query.NewKNN(7)},
	}
}

// diffRun is everything observable about one full batch evaluation.
type diffRun struct {
	answers [][]query.Answer
	stats   Stats
	io      store.IOStats
	hits    int64
	misses  int64
}

func runDifferential(t *testing.T, mk diffMaker, m vec.Metric, mode AvoidanceMode, width int, items []store.Item, dim int, queries []Query) diffRun {
	t.Helper()
	eng := mk.make(t, items, dim, m)
	proc, err := New(eng, m, Options{Avoidance: mode, Concurrency: width})
	if err != nil {
		t.Fatal(err)
	}
	lists, stats, err := proc.NewSession().MultiQueryAll(queries)
	if err != nil {
		t.Fatal(err)
	}
	r := diffRun{stats: stats, io: eng.Pager().Disk().Stats()}
	for _, l := range lists {
		r.answers = append(r.answers, append([]query.Answer(nil), l.Answers()...))
	}
	if buf := eng.Pager().Buffer(); buf != nil {
		r.hits, r.misses, _ = buf.HitRate()
	}
	return r
}

// identicalAnswers requires exact equality — no tolerance.
func identicalAnswers(a, b [][]query.Answer) (string, bool) {
	if len(a) != len(b) {
		return fmt.Sprintf("query count %d vs %d", len(a), len(b)), false
	}
	for q := range a {
		if len(a[q]) != len(b[q]) {
			return fmt.Sprintf("query %d: %d vs %d answers", q, len(a[q]), len(b[q])), false
		}
		for i := range a[q] {
			if a[q][i].ID != b[q][i].ID || a[q][i].Dist != b[q][i].Dist {
				return fmt.Sprintf("query %d answer %d: (%d, %v) vs (%d, %v)",
					q, i, a[q][i].ID, a[q][i].Dist, b[q][i].ID, b[q][i].Dist), false
			}
		}
	}
	return "", true
}

func TestDifferentialPipeline(t *testing.T) {
	const dim = 4
	items := testDB(11, 300, dim)
	queries := diffBatch(dim, 12)
	metrics := []struct {
		name string
		m    vec.Metric
	}{
		{"euclidean", vec.Euclidean{}},
		{"manhattan", vec.Manhattan{}},
	}
	modes := []AvoidanceMode{AvoidBoth, AvoidOff, AvoidLemma1, AvoidLemma2}

	for _, mk := range diffMakers() {
		for _, mt := range metrics {
			for _, mode := range modes {
				t.Run(fmt.Sprintf("%s/%s/%s", mk.name, mt.name, mode), func(t *testing.T) {
					seq := runDifferential(t, mk, mt.m, mode, 1, items, dim, queries)
					var wide []diffRun
					for _, width := range []int{2, 8} {
						r := runDifferential(t, mk, mt.m, mode, width, items, dim, queries)
						wide = append(wide, r)
						if diag, ok := identicalAnswers(seq.answers, r.answers); !ok {
							t.Errorf("width %d: answers differ from sequential: %s", width, diag)
						}
						if r.stats.PagesRead != seq.stats.PagesRead {
							t.Errorf("width %d: PagesRead = %d, sequential %d", width, r.stats.PagesRead, seq.stats.PagesRead)
						}
						if r.stats.PageVisits != seq.stats.PageVisits {
							t.Errorf("width %d: PageVisits = %d, sequential %d", width, r.stats.PageVisits, seq.stats.PageVisits)
						}
						if r.io != seq.io {
							t.Errorf("width %d: disk stats %+v, sequential %+v", width, r.io, seq.io)
						}
						if r.hits != seq.hits || r.misses != seq.misses {
							t.Errorf("width %d: buffer hits/misses %d/%d, sequential %d/%d",
								width, r.hits, r.misses, seq.hits, seq.misses)
						}
						if r.stats.MatrixDistCalcs != seq.stats.MatrixDistCalcs {
							t.Errorf("width %d: MatrixDistCalcs = %d, sequential %d",
								width, r.stats.MatrixDistCalcs, seq.stats.MatrixDistCalcs)
						}
						if mode == AvoidOff {
							if r.stats.DistCalcs != seq.stats.DistCalcs {
								t.Errorf("width %d: AvoidOff DistCalcs = %d, sequential %d",
									width, r.stats.DistCalcs, seq.stats.DistCalcs)
							}
							if r.stats.Avoided != 0 || r.stats.AvoidTries != 0 {
								t.Errorf("width %d: AvoidOff counted avoidance: %+v", width, r.stats)
							}
						}
						// Avoidance with snapshot bounds never computes
						// more than no avoidance, and computed + avoided
						// partitions the same offered set.
						if r.stats.DistCalcs > seq.stats.DistCalcs+seq.stats.Avoided {
							t.Errorf("width %d: DistCalcs %d exceeds offered set %d",
								width, r.stats.DistCalcs, seq.stats.DistCalcs+seq.stats.Avoided)
						}
						if r.stats.DistCalcs+r.stats.Avoided != seq.stats.DistCalcs+seq.stats.Avoided {
							t.Errorf("width %d: DistCalcs+Avoided = %d, sequential %d",
								width, r.stats.DistCalcs+r.stats.Avoided, seq.stats.DistCalcs+seq.stats.Avoided)
						}
					}
					// Widths >= 2 share the snapshot-bound evaluation and
					// must agree on every statistic, not just answers.
					if wide[0].stats != wide[1].stats {
						t.Errorf("width 2 and 8 stats differ:\n  2: %+v\n  8: %+v", wide[0].stats, wide[1].stats)
					}
				})
			}
		}
	}
}

// TestDifferentialEnginesMatchScan pins answer identity across physical
// organizations: every indexed engine, under every metric, avoidance mode
// and pipeline width, must return the exact answers of the sequential scan
// — same IDs, bit-identical distances. Pruning may only skip work, never
// change results.
func TestDifferentialEnginesMatchScan(t *testing.T) {
	const dim = 4
	items := testDB(91, 300, dim)
	queries := diffBatch(dim, 92)
	metrics := []struct {
		name string
		m    vec.Metric
	}{
		{"euclidean", vec.Euclidean{}},
		{"manhattan", vec.Manhattan{}},
	}
	makers := diffMakers()

	for _, mt := range metrics {
		for _, mode := range []AvoidanceMode{AvoidBoth, AvoidOff} {
			for _, width := range []int{1, 2, 8} {
				ref := runDifferential(t, makers[0], mt.m, mode, width, items, dim, queries)
				for _, mk := range makers[1:] {
					t.Run(fmt.Sprintf("%s/%s/%s/w%d", mk.name, mt.name, mode, width), func(t *testing.T) {
						got := runDifferential(t, mk, mt.m, mode, width, items, dim, queries)
						if diag, ok := identicalAnswers(ref.answers, got.answers); !ok {
							t.Errorf("answers differ from scan: %s", diag)
						}
					})
				}
			}
		}
	}
}

func TestConcurrencyKnob(t *testing.T) {
	items := testDB(1, 64, 3)
	eng := scanEngine(t, items)
	if _, err := New(eng, vec.Euclidean{}, Options{Concurrency: -1}); err == nil {
		t.Error("negative concurrency accepted")
	}
	proc, err := New(eng, vec.Euclidean{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := proc.Concurrency(); got != 1 {
		t.Errorf("zero-value Concurrency() = %d, want 1", got)
	}
	wide := proc.WithConcurrency(8)
	if got := wide.Concurrency(); got != 8 {
		t.Errorf("WithConcurrency(8).Concurrency() = %d", got)
	}
	if wide.Engine() != proc.Engine() || wide.Metric() != proc.Metric() {
		t.Error("WithConcurrency did not share the engine and counting metric")
	}
	if proc.Concurrency() != 1 {
		t.Error("WithConcurrency mutated the original processor")
	}
	if got := proc.WithConcurrency(-3).Concurrency(); got != 1 {
		t.Errorf("WithConcurrency(-3).Concurrency() = %d, want 1", got)
	}
}

// TestDifferentialIncremental checks the incremental entry point: two
// MultiQuery calls sharing a session (the second reuses buffered partial
// answers of the first) must behave identically at every width.
func TestDifferentialIncremental(t *testing.T) {
	const dim = 4
	items := testDB(21, 300, dim)
	queries := diffBatch(dim, 22)
	m := vec.Euclidean{}

	for _, mk := range diffMakers() {
		t.Run(mk.name, func(t *testing.T) {
			run := func(width int) diffRun {
				eng := mk.make(t, items, dim, m)
				proc, err := New(eng, m, Options{Concurrency: width})
				if err != nil {
					t.Fatal(err)
				}
				s := proc.NewSession()
				var total Stats
				// First call completes queries[0] and buffers partials.
				if _, st, err := s.MultiQuery(queries); err != nil {
					t.Fatal(err)
				} else {
					total = total.Add(st)
				}
				// Second call rotates the batch so query 1 completes next,
				// restoring the buffered state from the first call.
				rotated := append(append([]Query(nil), queries[1:]...), queries[0])
				lists, st, err := s.MultiQuery(rotated)
				if err != nil {
					t.Fatal(err)
				}
				total = total.Add(st)
				r := diffRun{stats: total, io: eng.Pager().Disk().Stats()}
				for _, l := range lists {
					r.answers = append(r.answers, append([]query.Answer(nil), l.Answers()...))
				}
				return r
			}
			seq := run(1)
			for _, width := range []int{2, 8} {
				r := run(width)
				if diag, ok := identicalAnswers(seq.answers, r.answers); !ok {
					t.Errorf("width %d: answers differ: %s", width, diag)
				}
				if r.io != seq.io {
					t.Errorf("width %d: disk stats %+v, sequential %+v", width, r.io, seq.io)
				}
				if r.stats.PagesRead != seq.stats.PagesRead || r.stats.PageVisits != seq.stats.PageVisits {
					t.Errorf("width %d: pages read/visited %d/%d, sequential %d/%d",
						width, r.stats.PagesRead, r.stats.PageVisits, seq.stats.PagesRead, seq.stats.PageVisits)
				}
			}
		})
	}
}

// TestDifferentialTraced pins the tracing contract: installing a tracer
// must not perturb anything observable — answers, every Stats counter,
// disk I/O and buffer hit/miss counts stay bit-identical to the untraced
// run at every pipeline width. The traced hot loops are verbatim twins of
// the untraced ones; this test is what keeps them in lockstep.
func TestDifferentialTraced(t *testing.T) {
	const dim = 4
	items := testDB(31, 300, dim)
	queries := diffBatch(dim, 32)
	m := vec.Euclidean{}

	for _, mk := range diffMakers() {
		for _, mode := range []AvoidanceMode{AvoidBoth, AvoidOff} {
			for _, width := range []int{1, 2, 8} {
				t.Run(fmt.Sprintf("%s/%s/w%d", mk.name, mode, width), func(t *testing.T) {
					bare := runDifferential(t, mk, m, mode, width, items, dim, queries)

					eng := mk.make(t, items, dim, m)
					proc, err := New(eng, m, Options{Avoidance: mode, Concurrency: width})
					if err != nil {
						t.Fatal(err)
					}
					tr := obs.New(obs.Config{SlowQueryThreshold: -1})
					proc = proc.WithTracer(tr)
					lists, stats, err := proc.NewSession().MultiQueryAll(queries)
					if err != nil {
						t.Fatal(err)
					}
					traced := diffRun{stats: stats, io: eng.Pager().Disk().Stats()}
					for _, l := range lists {
						traced.answers = append(traced.answers, append([]query.Answer(nil), l.Answers()...))
					}
					traced.hits, traced.misses, _ = eng.Pager().Buffer().HitRate()

					if diag, ok := identicalAnswers(bare.answers, traced.answers); !ok {
						t.Errorf("traced answers differ from untraced: %s", diag)
					}
					if traced.stats != bare.stats {
						t.Errorf("traced stats differ:\n  untraced: %+v\n  traced:   %+v", bare.stats, traced.stats)
					}
					if traced.io != bare.io {
						t.Errorf("traced disk stats %+v, untraced %+v", traced.io, bare.io)
					}
					if traced.hits != bare.hits || traced.misses != bare.misses {
						t.Errorf("traced buffer hits/misses %d/%d, untraced %d/%d",
							traced.hits, traced.misses, bare.hits, bare.misses)
					}

					// The tracer must actually have seen the run.
					if tr.Queries() == 0 {
						t.Error("tracer recorded no query calls")
					}
					if tr.Snapshot(obs.PhaseKernel).Count == 0 {
						t.Error("tracer recorded no kernel spans")
					}
					if tr.Snapshot(obs.PhasePageWait).Count == 0 {
						t.Error("tracer recorded no page_wait spans")
					}
					if width > 1 && tr.Snapshot(obs.PhaseMerge).Count == 0 {
						t.Error("pipelined run recorded no merge spans")
					}
				})
			}
		}
	}
}
