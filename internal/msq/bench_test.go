package msq

import (
	"fmt"
	"math/rand"
	"testing"

	"metricdb/internal/query"
	"metricdb/internal/scan"
	"metricdb/internal/vec"
	"metricdb/internal/xtree"
)

// BenchmarkMultiQueryAll measures a whole multi-query batch per iteration.
// Run with -benchmem: allocations per op must stay flat in the page count,
// because the page loop's avoidance scratch (known / dists / snap) is
// pre-sized once per pass and reused across pages — per-worker in the
// pipeline, a single buffer in the sequential path.
func BenchmarkMultiQueryAll(b *testing.B) {
	const n, dim, m = 4096, 16, 12
	items := testDB(5, n, dim)
	rng := rand.New(rand.NewSource(6))
	queries := make([]Query, m)
	for i := range queries {
		v := make(vec.Vector, dim)
		for j := range v {
			v[j] = rng.Float64()
		}
		queries[i] = Query{ID: uint64(i + 1), Vec: v, Type: query.NewKNN(8)}
	}

	for _, cfg := range []struct {
		name  string
		width int
	}{{"seq", 1}, {"pipeline4", 4}} {
		b.Run(fmt.Sprintf("scan/%s", cfg.name), func(b *testing.B) {
			e, err := scan.New(items, 32, 0)
			if err != nil {
				b.Fatal(err)
			}
			proc, err := New(e, vec.Euclidean{}, Options{Concurrency: cfg.width})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := proc.NewSession().MultiQueryAll(queries); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("xtree/%s", cfg.name), func(b *testing.B) {
			tr, err := xtree.Bulk(items, dim, xtree.Config{LeafCapacity: 32, DirFanout: 8, BufferPages: 0})
			if err != nil {
				b.Fatal(err)
			}
			proc, err := New(tr, vec.Euclidean{}, Options{Concurrency: cfg.width})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := proc.NewSession().MultiQueryAll(queries); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
