package msq

import (
	"fmt"
	"testing"

	"metricdb/internal/engine"
	"metricdb/internal/pivot"
	"metricdb/internal/pmtree"
	"metricdb/internal/scan"
	"metricdb/internal/store"
	"metricdb/internal/vafile"
	"metricdb/internal/vec"
	"metricdb/internal/xtree"
)

// This file extends the differential harness across the storage boundary:
// the file-backed page store (store.FileDisk) must be observationally
// indistinguishable from the simulated disk it replaces. For every
// engine × metric × avoidance mode × pipeline width, a run whose pages
// come from a persistent dataset directory must produce
//
//   - bit-identical answers (exact float equality),
//   - the identical Stats struct — DistCalcs, Avoided, AvoidTries,
//     PagesRead, PageVisits, MatrixDistCalcs, all of it,
//   - identical disk I/O statistics including the sequential/random
//     split, and
//   - identical buffer hit/miss counts
//
// compared to the same run on the simulated disk. Together with the crash
// suite this is the proof obligation of the persistence PR: moving a
// dataset to disk changes where bytes live and nothing else.

// persistToFileDisk returns a WrapDisk hook that dumps the freshly built
// simulated disk into a dataset directory in the on-disk format and hands
// the engine a FileDisk over it, discarding the in-memory disk.
func persistToFileDisk(t *testing.T, mmap bool) func(store.PageSource) (store.PageSource, error) {
	t.Helper()
	return func(src store.PageSource) (store.PageSource, error) {
		dir := t.TempDir()
		pages := make([]*store.Page, src.NumPages())
		dim, capacity := 0, 0
		for pid := range pages {
			p, err := src.Read(store.PageID(pid))
			if err != nil {
				return nil, err
			}
			pages[pid] = p
			if len(p.Items) > capacity {
				capacity = len(p.Items)
			}
			if dim == 0 && len(p.Items) > 0 {
				dim = p.Items[0].Vec.Dim()
			}
		}
		meta := store.DatasetMeta{Dim: dim, PageCapacity: capacity}
		if err := store.WriteDataset(dir, pages, meta, store.WriteOptions{NoSync: true}); err != nil {
			return nil, err
		}
		fd, err := store.OpenFileDisk(dir, store.FileDiskOptions{Mmap: mmap})
		if err != nil {
			return nil, err
		}
		t.Cleanup(func() { fd.Close() }) //nolint:errcheck
		return fd, nil
	}
}

// fileDiskMakers mirrors diffMakers but every engine runs on persistent
// storage via its WrapDisk hook.
func fileDiskMakers(mmap bool) []diffMaker {
	return []diffMaker{
		{"scan", func(t *testing.T, items []store.Item, dim int, m vec.Metric) engine.Engine {
			t.Helper()
			e, err := scan.NewWithConfig(items, scan.Config{
				PageCapacity: 16, BufferPages: 4, WrapDisk: persistToFileDisk(t, mmap),
			})
			if err != nil {
				t.Fatal(err)
			}
			return e
		}},
		{"xtree", func(t *testing.T, items []store.Item, dim int, m vec.Metric) engine.Engine {
			t.Helper()
			e, err := xtree.Bulk(items, dim, xtree.Config{
				LeafCapacity: 16, DirFanout: 8, BufferPages: 4, Metric: m,
				WrapDisk: persistToFileDisk(t, mmap),
			})
			if err != nil {
				t.Fatal(err)
			}
			return e
		}},
		{"vafile", func(t *testing.T, items []store.Item, dim int, m vec.Metric) engine.Engine {
			t.Helper()
			e, err := vafile.New(items, vafile.Config{
				PageCapacity: 16, BufferPages: 4, Metric: m,
				WrapDisk: persistToFileDisk(t, mmap),
			})
			if err != nil {
				t.Fatal(err)
			}
			return e
		}},
		{"pivot", func(t *testing.T, items []store.Item, dim int, m vec.Metric) engine.Engine {
			t.Helper()
			e, err := pivot.New(items, pivot.Config{
				PageCapacity: 16, BufferPages: 4, Pivots: 8, Metric: m,
				WrapDisk: persistToFileDisk(t, mmap),
			})
			if err != nil {
				t.Fatal(err)
			}
			return e
		}},
		{"pmtree", func(t *testing.T, items []store.Item, dim int, m vec.Metric) engine.Engine {
			t.Helper()
			e, err := pmtree.New(items, pmtree.Config{
				PageCapacity: 16, BufferPages: 4, Pivots: 8, Metric: m,
				WrapDisk: persistToFileDisk(t, mmap),
			})
			if err != nil {
				t.Fatal(err)
			}
			return e
		}},
	}
}

// requireSameRun asserts two differential runs are observationally
// identical in every dimension the harness records.
func requireSameRun(t *testing.T, label string, sim, file diffRun) {
	t.Helper()
	if diag, ok := identicalAnswers(sim.answers, file.answers); !ok {
		t.Errorf("%s: answers differ between disk backends: %s", label, diag)
	}
	if file.stats != sim.stats {
		t.Errorf("%s: stats differ:\n  simulated: %+v\n  file:      %+v", label, sim.stats, file.stats)
	}
	if file.io != sim.io {
		t.Errorf("%s: disk stats differ: simulated %+v, file %+v", label, sim.io, file.io)
	}
	if file.hits != sim.hits || file.misses != sim.misses {
		t.Errorf("%s: buffer hits/misses %d/%d, simulated %d/%d",
			label, file.hits, file.misses, sim.hits, sim.misses)
	}
}

func TestDifferentialFileDisk(t *testing.T) {
	const dim = 4
	items := testDB(41, 300, dim)
	queries := diffBatch(dim, 42)
	metrics := []struct {
		name string
		m    vec.Metric
	}{
		{"euclidean", vec.Euclidean{}},
		{"manhattan", vec.Manhattan{}},
	}
	modes := []AvoidanceMode{AvoidBoth, AvoidOff, AvoidLemma1, AvoidLemma2}
	sims := diffMakers()
	files := fileDiskMakers(false)

	for i := range sims {
		for _, mt := range metrics {
			for _, mode := range modes {
				t.Run(fmt.Sprintf("%s/%s/%s", sims[i].name, mt.name, mode), func(t *testing.T) {
					for _, width := range []int{1, 2, 8} {
						sim := runDifferential(t, sims[i], mt.m, mode, width, items, dim, queries)
						file := runDifferential(t, files[i], mt.m, mode, width, items, dim, queries)
						requireSameRun(t, fmt.Sprintf("width %d", width), sim, file)
					}
				})
			}
		}
	}
}

// TestDifferentialFileDiskMmap repeats a narrower sweep in mmap mode: the
// mapped read path shares only the decode step with the pread path, so it
// earns its own equivalence check. (On platforms without mmap support
// OpenFileDisk falls back to pread, which makes this a harmless repeat.)
func TestDifferentialFileDiskMmap(t *testing.T) {
	const dim = 4
	items := testDB(51, 300, dim)
	queries := diffBatch(dim, 52)
	m := vec.Euclidean{}
	sims := diffMakers()
	files := fileDiskMakers(true)

	for i := range sims {
		for _, mode := range []AvoidanceMode{AvoidBoth, AvoidOff} {
			t.Run(fmt.Sprintf("%s/%s", sims[i].name, mode), func(t *testing.T) {
				for _, width := range []int{1, 2, 8} {
					sim := runDifferential(t, sims[i], m, mode, width, items, dim, queries)
					file := runDifferential(t, files[i], m, mode, width, items, dim, queries)
					requireSameRun(t, fmt.Sprintf("width %d", width), sim, file)
				}
			})
		}
	}
}
