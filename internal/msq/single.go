package msq

import (
	"context"
	"fmt"
	"time"

	"metricdb/internal/engine"
	"metricdb/internal/obs"
	"metricdb/internal/query"
	"metricdb/internal/vec"
)

// Single evaluates one similarity query, implementing the algorithm of
// Figure 1: the engine supplies the relevant data pages in optimal order
// (determine_relevant_data_pages), each page's items are tested against the
// current query distance, and for bounded queries the query distance
// tightens as answers arrive (adapt_query_dist), pruning the remaining plan
// (prune_pages).
func (p *Processor) Single(q vec.Vector, t query.Type) (*query.AnswerList, Stats, error) {
	return p.SingleContext(context.Background(), q, t)
}

// SingleContext is Single with cancellation: the page loop checks ctx once
// per page and aborts with ctx's error when it is canceled or past its
// deadline. The check is observation-free — on the uncanceled path it
// perturbs no answers and no statistics counters.
func (p *Processor) SingleContext(ctx context.Context, q vec.Vector, t query.Type) (*query.AnswerList, Stats, error) {
	if err := t.Validate(); err != nil {
		return nil, Stats{}, err
	}
	if len(q) == 0 {
		return nil, Stats{}, fmt.Errorf("msq: empty query vector")
	}

	tr := p.tracer
	traced := tr.Enabled()
	var begin time.Time
	if traced {
		begin = time.Now()
	}

	answers := query.NewAnswerList(t)
	ioBefore := ioSnapshot(p.eng.Pager())
	distBefore := p.metric.Count()
	abandonBefore := p.metric.Abandoned()
	var pivotBefore int64
	pc, hasPivots := p.eng.(engine.PivotCoster)
	if hasPivots {
		pivotBefore = pc.PivotDistCalcs()
	}
	stats := Stats{Queries: 1}

	sp := tr.Start(obs.PhasePlan)
	pq := p.eng.Prepare(q)
	plan := pq.Plan(t.InitialQueryDist())
	sp.End()
	for _, ref := range plan {
		if err := ctx.Err(); err != nil {
			return nil, stats, fmt.Errorf("msq: single query: %w", err)
		}
		// prune_pages: the plan is ordered by ascending lower bound for
		// index engines (all zero for a scan), so the first reference
		// beyond the query distance ends the search.
		if ref.MinDist > answers.QueryDist() {
			break
		}
		var waitStart time.Time
		if traced {
			waitStart = time.Now()
		}
		page, err := p.eng.ReadPage(ref.ID)
		if traced {
			tr.ObserveSince(obs.PhasePageWait, waitStart)
		}
		if err != nil {
			return nil, stats, fmt.Errorf("msq: single query: %w", err)
		}
		stats.PageVisits++
		var evalStart time.Time
		if traced {
			evalStart = time.Now()
		}
		for i := range page.Items {
			// The live pruning distance doubles as the bounded kernel's
			// abandonment limit: an abandoned item is strictly farther
			// than the current query distance, so Consider would have
			// rejected it anyway and the answer list is unchanged.
			d, within := p.metric.DistanceWithin(q, page.Items[i].Vec, answers.QueryDist())
			if within {
				answers.Consider(page.Items[i].ID, d)
			}
		}
		if traced {
			tr.ObserveSince(obs.PhaseKernel, evalStart)
		}
	}

	stats.PagesRead = p.eng.Pager().Disk().Stats().Reads - ioBefore.Reads
	stats.DistCalcs = p.metric.Count() - distBefore
	stats.PartialAbandoned = p.metric.Abandoned() - abandonBefore
	if hasPivots {
		stats.PivotDistCalcs = pc.PivotDistCalcs() - pivotBefore
	}
	if traced {
		tr.RecordQuery("single", 1, time.Since(begin), stats.PagesRead, stats.DistCalcs, stats.Avoided)
	}
	return answers, stats, nil
}
