package msq

import (
	"fmt"

	"metricdb/internal/query"
	"metricdb/internal/vec"
)

// Single evaluates one similarity query, implementing the algorithm of
// Figure 1: the engine supplies the relevant data pages in optimal order
// (determine_relevant_data_pages), each page's items are tested against the
// current query distance, and for bounded queries the query distance
// tightens as answers arrive (adapt_query_dist), pruning the remaining plan
// (prune_pages).
func (p *Processor) Single(q vec.Vector, t query.Type) (*query.AnswerList, Stats, error) {
	if err := t.Validate(); err != nil {
		return nil, Stats{}, err
	}
	if len(q) == 0 {
		return nil, Stats{}, fmt.Errorf("msq: empty query vector")
	}

	answers := query.NewAnswerList(t)
	ioBefore := ioSnapshot(p.eng.Pager())
	distBefore := p.metric.Count()
	abandonBefore := p.metric.Abandoned()
	stats := Stats{Queries: 1}

	plan := p.eng.Plan(q, t.InitialQueryDist())
	for _, ref := range plan {
		// prune_pages: the plan is ordered by ascending lower bound for
		// index engines (all zero for a scan), so the first reference
		// beyond the query distance ends the search.
		if ref.MinDist > answers.QueryDist() {
			break
		}
		page, err := p.eng.ReadPage(ref.ID)
		if err != nil {
			return nil, stats, fmt.Errorf("msq: single query: %w", err)
		}
		stats.PageVisits++
		for i := range page.Items {
			// The live pruning distance doubles as the bounded kernel's
			// abandonment limit: an abandoned item is strictly farther
			// than the current query distance, so Consider would have
			// rejected it anyway and the answer list is unchanged.
			d, within := p.metric.DistanceWithin(q, page.Items[i].Vec, answers.QueryDist())
			if within {
				answers.Consider(page.Items[i].ID, d)
			}
		}
	}

	stats.PagesRead = p.eng.Pager().Disk().Stats().Reads - ioBefore.Reads
	stats.DistCalcs = p.metric.Count() - distBefore
	stats.PartialAbandoned = p.metric.Abandoned() - abandonBefore
	return answers, stats, nil
}
