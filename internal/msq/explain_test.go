package msq

import (
	"context"
	"testing"

	"metricdb/internal/query"
	"metricdb/internal/scan"
	"metricdb/internal/store"
	"metricdb/internal/vec"
)

// explainBatch is a mixed range/k-NN workload over the shared test dataset.
func explainBatch(items []store.Item) []Query {
	return []Query{
		{ID: 1, Vec: items[3].Vec, Type: query.NewRange(0.4)},
		{ID: 2, Vec: items[17].Vec, Type: query.NewKNN(5)},
		{ID: 3, Vec: items[41].Vec, Type: query.NewRange(0.25)},
		{ID: 4, Vec: items[59].Vec, Type: query.NewKNN(3)},
	}
}

// TestExplainStrictlyObservational: the profiling run must be a real run —
// same answers, same batch Stats as MultiQueryAll on an identical
// processor, with the per-query attribution summing to the batch counters.
func TestExplainStrictlyObservational(t *testing.T) {
	items := testDB(7, 400, 4)
	qs := explainBatch(items)

	plain, err := New(scanEngine(t, items), vec.Euclidean{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	answers, stats, err := plain.MultiQuery(qs)
	if err != nil {
		t.Fatal(err)
	}

	profiled, err := New(scanEngine(t, items), vec.Euclidean{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := profiled.ExplainContext(context.Background(), qs)
	if err != nil {
		t.Fatal(err)
	}

	if ex.Stats != stats {
		t.Errorf("profiled stats = %+v, plain = %+v", ex.Stats, stats)
	}
	if ex.Engine != "scan" || ex.Width != 1 || ex.Avoidance != "both" {
		t.Errorf("batch header = %s/%d/%s", ex.Engine, ex.Width, ex.Avoidance)
	}
	if len(ex.Queries) != len(qs) {
		t.Fatalf("%d profiles for %d queries", len(ex.Queries), len(qs))
	}
	var dist, avoided, tries, abandoned int64
	for i, p := range ex.Queries {
		if p.ID != qs[i].ID {
			t.Errorf("profile %d has id %d, want %d", i, p.ID, qs[i].ID)
		}
		if p.Answers != answers[i].Len() {
			t.Errorf("query %d: profile reports %d answers, plain run found %d",
				p.ID, p.Answers, answers[i].Len())
		}
		if p.PagesVisited <= 0 {
			t.Errorf("query %d visited no pages", p.ID)
		}
		dist += p.DistCalcs
		avoided += p.Lemma1Avoided + p.Lemma2Avoided
		tries += p.AvoidTries
		abandoned += p.Abandoned
	}
	if dist != stats.DistCalcs {
		t.Errorf("profile dist calcs sum to %d, batch counted %d", dist, stats.DistCalcs)
	}
	if avoided != stats.Avoided {
		t.Errorf("profile avoidance sums to %d, batch counted %d", avoided, stats.Avoided)
	}
	if tries != stats.AvoidTries {
		t.Errorf("profile tries sum to %d, batch counted %d", tries, stats.AvoidTries)
	}
	if abandoned != stats.PartialAbandoned {
		t.Errorf("profile abandonments sum to %d, batch counted %d", abandoned, stats.PartialAbandoned)
	}
}

// TestExplainWidthStability: pages visited, the offered set and answer
// counts are width-invariant; the full profile is identical across all
// pipeline widths >= 2 (see the stability contract in explain.go).
func TestExplainWidthStability(t *testing.T) {
	items := testDB(11, 500, 3)
	qs := explainBatch(items)

	profiles := map[int][]Profile{}
	for _, width := range []int{1, 2, 8} {
		p, err := New(scanEngine(t, items), vec.Euclidean{}, Options{Concurrency: width})
		if err != nil {
			t.Fatal(err)
		}
		ex, err := p.ExplainContext(context.Background(), qs)
		if err != nil {
			t.Fatal(err)
		}
		profiles[width] = ex.Queries
	}
	base := profiles[1]
	for _, width := range []int{2, 8} {
		for i, p := range profiles[width] {
			if p.PagesVisited != base[i].PagesVisited {
				t.Errorf("width %d query %d: pages visited %d, width 1 saw %d",
					width, p.ID, p.PagesVisited, base[i].PagesVisited)
			}
			if p.Offered() != base[i].Offered() {
				t.Errorf("width %d query %d: offered %d, width 1 offered %d",
					width, p.ID, p.Offered(), base[i].Offered())
			}
			if p.Answers != base[i].Answers {
				t.Errorf("width %d query %d: %d answers, width 1 found %d",
					width, p.ID, p.Answers, base[i].Answers)
			}
		}
	}
	for i := range profiles[2] {
		if profiles[2][i] != profiles[8][i] {
			t.Errorf("query %d profile differs between widths 2 and 8:\n  %+v\n  %+v",
				profiles[2][i].ID, profiles[2][i], profiles[8][i])
		}
	}
}

// TestExplainBufferAndPhaseFields: with a buffered pager the profile
// reports the call's pool deltas and a consistent hit ratio, and the
// wall-time fields are populated.
func TestExplainBufferAndPhaseFields(t *testing.T) {
	items := testDB(13, 300, 3)
	e, err := scan.New(items, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(e, vec.Euclidean{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := p.ExplainContext(context.Background(), explainBatch(items))
	if err != nil {
		t.Fatal(err)
	}
	if ex.BufferHits+ex.BufferMisses <= 0 {
		t.Fatal("buffered run recorded no pool activity")
	}
	want := float64(ex.BufferHits) / float64(ex.BufferHits+ex.BufferMisses)
	if ex.BufferHitRatio != want {
		t.Errorf("hit ratio = %g, want %g", ex.BufferHitRatio, want)
	}
	if ex.WallNs <= 0 {
		t.Error("wall time not recorded")
	}
	if ex.PhaseNs["kernel"] <= 0 {
		t.Errorf("phase wall times = %v, want a kernel entry", ex.PhaseNs)
	}
}
