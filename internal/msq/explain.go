package msq

import (
	"context"
	"math"
	"sync/atomic"
	"time"

	"metricdb/internal/engine"
	"metricdb/internal/obs"
	"metricdb/internal/store"
)

// EXPLAIN: per-query cost profiles for one batch. The paper's counters
// (§5.1 pages read, §5.2 distance calculations and avoidance tries) are
// batch totals; a profile attributes them to the individual query position
// — which queries paid for the shared pages, which lemma did the avoiding,
// how often the bounded kernel abandoned — plus the call's buffer-pool
// behaviour and per-phase wall time. Like tracing, EXPLAIN is strictly
// observational: the explain twins of the page loops make byte-for-byte
// the same avoidance, abandonment and Consider decisions as the plain
// loops, so answers and the batch counters are identical with and without
// profiling.
//
// Width stability: page visits, answers, and the per-query offered set
// (DistCalcs + Lemma1Avoided + Lemma2Avoided) are pure functions of the
// page-barrier state and therefore identical at every pipeline width. The
// split of the offered set into calculated/avoided/abandoned is identical
// across all widths >= 2 (snapshot-pure decisions, chunk-independent known
// lists) but may shift slightly against width 1, which tightens pruning
// bounds item by item (see pipeline.go). Wall-time fields are timing, not
// counters, and are never expected to be stable.

// Profile is the EXPLAIN record of one query position in a batch.
type Profile struct {
	// ID is the caller-chosen query identity.
	ID uint64 `json:"id"`
	// Kind is the query type ("range" or "knn").
	Kind string `json:"kind"`
	// PagesVisited counts the data pages examined for this query: pages
	// where the query was active at the page barrier, plus its seed page.
	PagesVisited int64 `json:"pages_visited"`
	// DistCalcs counts the object distance evaluations charged to this
	// query (full or early-abandoned; the matrix overhead is batch-level).
	DistCalcs int64 `json:"dist_calcs"`
	// Abandoned counts the DistCalcs the bounded kernel cut short.
	Abandoned int64 `json:"abandoned"`
	// Lemma1Avoided / Lemma2Avoided split the avoided calculations by the
	// lemma that proved them irrelevant (Definition 5). Under AvoidBoth a
	// pair satisfying both lemmas is attributed to Lemma 1, matching the
	// evaluation order of the plain loop.
	Lemma1Avoided int64 `json:"lemma1_avoided"`
	Lemma2Avoided int64 `json:"lemma2_avoided"`
	// AvoidTries counts the triangle-inequality probes spent on this query.
	AvoidTries int64 `json:"avoid_tries"`
	// QuantFiltered counts the pairs the quantized lower-bound filter
	// rejected for this query (LayoutQuant only; zero elsewhere). A
	// filtered pair is in neither DistCalcs nor the avoided counts.
	QuantFiltered int64 `json:"quant_filtered,omitempty"`
	// Answers is the query's final answer count.
	Answers int `json:"answers"`
}

// Offered returns the query's offered set: every (item, query) pair the
// page loop considered, whether calculated or avoided. It is identical at
// every pipeline width.
func (p Profile) Offered() int64 {
	return p.DistCalcs + p.Lemma1Avoided + p.Lemma2Avoided
}

// Explain is the profile of one ExplainAllContext call: per-query
// attribution plus the batch-level shared costs.
type Explain struct {
	// Engine is the physical organization the batch ran against.
	Engine string `json:"engine"`
	// EngineConfig is the engine's self-described tuning (pivot count,
	// approximation bits, directory fanout) for engines that implement
	// engine.Described; the zero value means the engine describes nothing.
	EngineConfig engine.Config `json:"engine_config,omitzero"`
	// Width is the pipeline width the batch ran at.
	Width int `json:"width"`
	// Avoidance is the triangle-inequality mode ("both", "off", ...).
	Avoidance string `json:"avoidance"`
	// Queries holds one profile per query position, batch order.
	Queries []Profile `json:"queries"`
	// Stats is the call's batch-level counter record (the same Stats a
	// MultiQueryAll call returns).
	Stats Stats `json:"stats"`
	// BufferHits/BufferMisses/BufferEvictions are the LRU buffer-pool
	// deltas over the call; BufferHitRatio is hits/(hits+misses), 0 when
	// the call touched no pages (or the pager is unbuffered).
	BufferHits      int64   `json:"buffer_hits"`
	BufferMisses    int64   `json:"buffer_misses"`
	BufferEvictions int64   `json:"buffer_evictions"`
	BufferHitRatio  float64 `json:"buffer_hit_ratio"`
	// PhaseNs is the call's wall time per phase (plan, matrix, page_wait,
	// avoid, kernel, merge), in nanoseconds. Phases the call never entered
	// are absent. Concurrent phases sum across workers, so the values can
	// exceed WallNs at widths >= 2.
	PhaseNs map[string]int64 `json:"phase_ns"`
	// WallNs is the call's total wall time.
	WallNs int64 `json:"wall_ns"`
	// Predicted, when present, holds the advisor's cost predictions for
	// the engine the batch ran on — the raw model row and, when a
	// calibration recorder has samples, the calibrated row — so the
	// prediction sits next to the observed counters it should match. msq
	// itself never fills this (the cost model lives above this package);
	// the metricdb layer annotates it after the profiling run.
	Predicted []PredictedCost `json:"predicted,omitempty"`
}

// PredictedCost is one predicted cost row for an EXPLAIN: the advisor's
// estimate of the batch's counters and wall time under one model variant.
// The fields mirror cost.EngineEstimate without importing it (cost sits
// above msq in the dependency order).
type PredictedCost struct {
	// Engine is the engine the prediction priced.
	Engine string `json:"engine"`
	// Source is the model variant: "model" for the raw analytic constants,
	// "calibrated" after per-engine correction factors.
	Source         string `json:"source"`
	PagesRead      int64  `json:"pages_read"`
	DistCalcs      int64  `json:"dist_calcs"`
	PivotDistCalcs int64  `json:"pivot_dist_calcs,omitempty"`
	TotalNs        int64  `json:"total_ns"`
}

// explainCounters is the mutable accumulator behind one Profile. The
// pipeline's workers update it concurrently, so the fields are atomic; the
// sequential path pays two uncontended atomic adds per pair, acceptable on
// a diagnostic path.
type explainCounters struct {
	pagesVisited atomic.Int64
	distCalcs    atomic.Int64
	abandoned    atomic.Int64
	lemma1       atomic.Int64
	lemma2       atomic.Int64
	tries        atomic.Int64
	filtered     atomic.Int64
}

// explainState is attached to a Session for the duration of one
// ExplainAllContext call; its presence switches the page loops to their
// explain twins. prof is indexed by global batch position.
type explainState struct {
	prof    []explainCounters
	phaseNs [obs.NumPhases]atomic.Int64
}

func newExplainState(m int) *explainState {
	return &explainState{prof: make([]explainCounters, m)}
}

// observe accumulates phase wall time (the explain counterpart of
// Tracer.Observe; safe from concurrent workers).
func (ex *explainState) observe(p obs.Phase, d time.Duration) {
	if d < 0 {
		d = 0
	}
	ex.phaseNs[p].Add(int64(d))
}

// avoidableExplain is avoidable plus lemma attribution: identical probe
// order, probe count, and decision, additionally reporting whether the
// avoiding lemma was Lemma 1 (true) or Lemma 2 (false). Under AvoidBoth
// the plain loop's short-circuit `||` tests Lemma 1 first, so attributing
// a both-lemmas pair to Lemma 1 reproduces its evaluation order exactly.
// Keep in lockstep with avoidable.
func (s *Session) avoidableExplain(qd float64, pos int, known []knownDist, matrix [][]float64, tries *int64) (avoided, byLemma1 bool) {
	row := matrix[pos]
	mode := s.proc.opts.Avoidance
	if len(known) > maxAvoidProbes {
		known = known[:maxAvoidProbes]
	}
	for _, k := range known {
		*tries++
		mij := row[k.idx]
		switch mode {
		case AvoidBoth:
			if k.d-mij > qd {
				return true, true
			}
			if mij-k.d > qd {
				return true, false
			}
		case AvoidLemma1:
			if k.d-mij > qd {
				return true, true
			}
		case AvoidLemma2:
			if mij-k.d > qd {
				return true, false
			}
		}
	}
	return false, false
}

// processPageExplain is processPage with per-query attribution: the same
// loop and the same decisions, plus profile updates and the traced twin's
// avoid/kernel clock splits (feeding both the explain state and, when a
// tracer is installed, the tracer). Keep this body in lockstep with
// processPage and processPageTraced.
func (s *Session) processPageExplain(ex *explainState, page *store.Page, active []*queryState, activeIdx []int, matrix [][]float64, stats *Stats, sc *seqScratch) {
	tr := s.proc.tracer
	pageStart := time.Now()
	var avoidNs time.Duration
	avoiding := matrix != nil && s.proc.opts.Avoidance != AvoidOff
	kernel := s.proc.metric.Kernel()
	filters := s.quantFilters(page, active, sc.filters)
	var calcs, abandoned int64
	startFiltered := stats.QuantFiltered
	known := sc.known
	qds := sc.qds[:len(active)]
	for i, st := range active {
		qds[i] = st.queryDist()
	}
	var raise []float64
	if avoiding {
		raise = lemma1Raises(activeIdx, matrix, qds, sc.raise)
	}
	for it := range page.Items {
		item := &page.Items[it]
		var codes []uint8
		if filters != nil {
			codes = page.Cols.ItemCodes(it)
		}
		known = known[:0]
		for a, st := range active {
			pos := activeIdx[a]
			prof := &ex.prof[pos]
			qd := qds[a]
			limit := qd
			if avoiding {
				t0 := time.Now()
				var pairTries int64
				av, byL1 := s.avoidableExplain(qd, pos, known, matrix, &pairTries)
				stats.AvoidTries += pairTries
				prof.tries.Add(pairTries)
				if av {
					stats.Avoided++
					if byL1 {
						prof.lemma1.Add(1)
					} else {
						prof.lemma2.Add(1)
					}
					avoidNs += time.Since(t0)
					continue
				}
				limit = abandonLimit(qd, raise[a], len(known))
				avoidNs += time.Since(t0)
			}
			if filters != nil {
				if f := filters[a]; f != nil && f.Exceeds(codes, qd) {
					stats.QuantFiltered++
					prof.filtered.Add(1)
					continue
				}
			}
			d, within := kernel.DistanceWithin(st.q.Vec, item.Vec, limit)
			calcs++
			prof.distCalcs.Add(1)
			if avoiding {
				known = append(known, knownDist{d: d, idx: int32(pos)})
			}
			if within {
				if st.answers.Consider(item.ID, d) {
					wasInf := math.IsInf(qd, 1)
					qds[a] = st.queryDist()
					if avoiding && wasInf && !math.IsInf(qds[a], 1) {
						row := matrix[pos]
						for j, p := range activeIdx {
							if t := row[p] + qds[a]; t > raise[j] {
								raise[j] = t
							}
						}
					}
				}
			} else {
				abandoned++
				prof.abandoned.Add(1)
			}
		}
	}
	s.proc.metric.AddCalls(calcs, abandoned)
	s.proc.metric.AddFiltered(stats.QuantFiltered - startFiltered)
	ex.observe(obs.PhaseAvoid, avoidNs)
	kernelDur := time.Since(pageStart) - avoidNs
	if kernelDur < 0 {
		kernelDur = 0
	}
	ex.observe(obs.PhaseKernel, kernelDur)
	if tr.Enabled() {
		tr.Observe(obs.PhaseAvoid, avoidNs)
		tr.Observe(obs.PhaseKernel, kernelDur)
	}
}

// ExplainAllContext evaluates the whole batch to completion, exactly like
// MultiQueryAllContext, while building per-query profiles. The profiling
// run is a real run: answers land in the session's buffers and the
// returned Stats match what MultiQueryAllContext would have reported for
// the same call. Sessions with buffered progress are profiled for the
// remaining work only.
func (s *Session) ExplainAllContext(ctx context.Context, queries []Query) (*Explain, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ex := newExplainState(len(queries))
	s.explain = ex
	defer func() { s.explain = nil }()

	var hits0, misses0, evict0 int64
	buf := s.proc.eng.Pager().Buffer()
	if buf != nil {
		hits0, misses0, _ = buf.HitRate()
		evict0 = buf.Evictions()
	}
	begin := time.Now()

	results, stats, err := s.multiQueryAllLocked(ctx, queries)
	if err != nil {
		return nil, err
	}

	out := &Explain{
		Engine: s.proc.eng.Name(),
		Width:  s.proc.Concurrency(),
		EngineConfig: func() engine.Config {
			if d, ok := s.proc.eng.(engine.Described); ok {
				return d.Describe()
			}
			return engine.Config{}
		}(),
		Avoidance: s.proc.opts.Avoidance.String(),
		Queries:   make([]Profile, len(queries)),
		Stats:     stats,
		PhaseNs:   make(map[string]int64),
		WallNs:    int64(time.Since(begin)),
	}
	if buf != nil {
		hits1, misses1, _ := buf.HitRate()
		out.BufferHits = hits1 - hits0
		out.BufferMisses = misses1 - misses0
		out.BufferEvictions = buf.Evictions() - evict0
		if total := out.BufferHits + out.BufferMisses; total > 0 {
			out.BufferHitRatio = float64(out.BufferHits) / float64(total)
		}
	}
	for p := 0; p < obs.NumPhases; p++ {
		if ns := ex.phaseNs[p].Load(); ns > 0 {
			out.PhaseNs[obs.Phase(p).String()] = ns
		}
	}
	for i := range queries {
		c := &ex.prof[i]
		out.Queries[i] = Profile{
			ID:            queries[i].ID,
			Kind:          queries[i].Type.Kind.String(),
			PagesVisited:  c.pagesVisited.Load(),
			DistCalcs:     c.distCalcs.Load(),
			Abandoned:     c.abandoned.Load(),
			Lemma1Avoided: c.lemma1.Load(),
			Lemma2Avoided: c.lemma2.Load(),
			AvoidTries:    c.tries.Load(),
			QuantFiltered: c.filtered.Load(),
			Answers:       results[i].Len(),
		}
	}
	return out, nil
}

// ExplainContext profiles one batch on a fresh session (the one-shot
// counterpart of Processor.MultiQueryContext).
func (p *Processor) ExplainContext(ctx context.Context, queries []Query) (*Explain, error) {
	return p.NewSession().ExplainAllContext(ctx, queries)
}
