package msq

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"metricdb/internal/query"
	"metricdb/internal/vec"
)

// Stress tests for the pipeline's shared state, meant to run under the race
// detector (make differential / make race). They hammer one shared Session
// and one shared Processor from many goroutines while the pipeline itself
// runs at width 4, so every lock — session serialization, per-query answer
// shards, pager singleflight, buffer LRU, disk counters — sees contention.

// stressQueries builds g disjoint-ID query batches over one dataset.
func stressQueries(dim int, groups, perGroup int, seed int64) [][]Query {
	rng := rand.New(rand.NewSource(seed))
	batches := make([][]Query, groups)
	for g := range batches {
		qs := make([]Query, perGroup)
		for i := range qs {
			v := make(vec.Vector, dim)
			for j := range v {
				v[j] = rng.Float64()
			}
			id := uint64(g*perGroup + i)
			switch i % 3 {
			case 0:
				qs[i] = Query{ID: id, Vec: v, Type: query.NewKNN(5)}
			case 1:
				qs[i] = Query{ID: id, Vec: v, Type: query.NewRange(0.5)}
			default:
				qs[i] = Query{ID: id, Vec: v, Type: query.NewBoundedKNN(4, 0.9)}
			}
		}
		batches[g] = qs
	}
	return batches
}

// TestStressSharedSession drives one Session from many goroutines. Calls
// serialize on the session mutex, but each call runs the width-4 pipeline,
// so the test exercises pipeline teardown/startup back to back plus the
// shared pager underneath, and verifies the final answers are still exact.
func TestStressSharedSession(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in short mode")
	}
	const dim = 4
	items := testDB(31, 400, dim)
	eng := scanEngine(t, items)
	proc, err := New(eng, vec.Euclidean{}, Options{Concurrency: 4})
	if err != nil {
		t.Fatal(err)
	}
	s := proc.NewSession()

	const goroutines = 8
	batches := stressQueries(dim, goroutines, 4, 32)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(qs []Query) {
			defer wg.Done()
			if _, _, err := s.MultiQueryAll(qs); err != nil {
				errs <- err
			}
		}(batches[g])
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Every query of every batch must have its exact brute-force answers:
	// re-running through the same session returns the buffered lists.
	for _, qs := range batches {
		lists, _, err := s.MultiQueryAll(qs)
		if err != nil {
			t.Fatal(err)
		}
		for i, q := range qs {
			want := brute(items, vec.Euclidean{}, q.Vec, q.Type)
			if !sameAnswers(lists[i].Answers(), want) {
				t.Fatalf("query %d: answers corrupted under concurrent sessions", q.ID)
			}
		}
	}
}

// TestStressSharedProcessor runs many independent sessions concurrently on
// one processor, so the pipelines contend for the same engine, pager,
// buffer and disk — the deployment shape of the wire server, where each
// connection owns a session over a shared database.
func TestStressSharedProcessor(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in short mode")
	}
	const dim = 4
	items := testDB(41, 400, dim)
	for _, width := range []int{1, 4} {
		width := width
		t.Run(fmt.Sprintf("width=%d", width), func(t *testing.T) {
			eng := xtreeEngine(t, items, dim)
			proc, err := New(eng, vec.Euclidean{}, Options{Concurrency: width})
			if err != nil {
				t.Fatal(err)
			}
			const goroutines = 8
			batches := stressQueries(dim, goroutines, 4, 42)
			var wg sync.WaitGroup
			failures := make(chan string, goroutines*4)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(qs []Query) {
					defer wg.Done()
					lists, _, err := proc.NewSession().MultiQueryAll(qs)
					if err != nil {
						failures <- err.Error()
						return
					}
					for i, q := range qs {
						want := brute(items, vec.Euclidean{}, q.Vec, q.Type)
						if !sameAnswers(lists[i].Answers(), want) {
							failures <- fmt.Sprintf("query %d: wrong answers", q.ID)
						}
					}
				}(batches[g])
			}
			wg.Wait()
			close(failures)
			for f := range failures {
				t.Fatal(f)
			}
		})
	}
}
