package msq

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"metricdb/internal/engine"
	"metricdb/internal/query"
	"metricdb/internal/scan"
	"metricdb/internal/store"
	"metricdb/internal/vec"
	"metricdb/internal/xtree"
)

// testDB builds a deterministic uniform dataset.
func testDB(seed int64, n, dim int) []store.Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]store.Item, n)
	for i := range items {
		v := make(vec.Vector, dim)
		for j := range v {
			v[j] = rng.Float64()
		}
		items[i] = store.Item{ID: store.ItemID(i), Vec: v}
	}
	return items
}

func scanEngine(t *testing.T, items []store.Item) engine.Engine {
	t.Helper()
	e, err := scan.New(items, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func xtreeEngine(t *testing.T, items []store.Item, dim int) engine.Engine {
	t.Helper()
	tr, err := xtree.Bulk(items, dim, xtree.Config{LeafCapacity: 16, DirFanout: 8, BufferPages: 0})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// brute computes the exact answer set with (dist, id) ordering.
func brute(items []store.Item, m vec.Metric, q vec.Vector, t query.Type) []query.Answer {
	l := query.NewAnswerList(t)
	for _, it := range items {
		l.Consider(it.ID, m.Distance(q, it.Vec))
	}
	return append([]query.Answer(nil), l.Answers()...)
}

func sameAnswers(a, b []query.Answer) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || math.Abs(a[i].Dist-b[i].Dist) > 1e-12 {
			return false
		}
	}
	return true
}

func TestNewValidation(t *testing.T) {
	items := testDB(1, 50, 3)
	e := scanEngine(t, items)
	if _, err := New(nil, vec.Euclidean{}, Options{}); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := New(e, nil, Options{}); err == nil {
		t.Error("nil metric accepted")
	}
	c := vec.NewCounting(vec.Euclidean{})
	p, err := New(e, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Metric() != c {
		t.Error("existing counting wrapper not reused")
	}
	if p.Engine() != e {
		t.Error("Engine() accessor wrong")
	}
	if p.Options() != (Options{}) {
		t.Error("Options() accessor wrong")
	}
}

func TestAvoidanceModeString(t *testing.T) {
	for mode, want := range map[AvoidanceMode]string{
		AvoidBoth: "both", AvoidOff: "off", AvoidLemma1: "lemma1", AvoidLemma2: "lemma2",
	} {
		if got := mode.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
	if AvoidanceMode(99).String() == "" {
		t.Error("unknown mode has no diagnostic string")
	}
}

func TestSingleMatchesBruteForce(t *testing.T) {
	const dim = 5
	items := testDB(2, 400, dim)
	m := vec.Euclidean{}
	rng := rand.New(rand.NewSource(3))

	engines := map[string]engine.Engine{
		"scan":  scanEngine(t, items),
		"xtree": xtreeEngine(t, items, dim),
	}
	types := []query.Type{
		query.NewKNN(10),
		query.NewRange(0.4),
		query.NewBoundedKNN(5, 0.5),
	}
	for name, e := range engines {
		p, err := New(e, m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, typ := range types {
			for trial := 0; trial < 10; trial++ {
				q := testDB(rng.Int63(), 1, dim)[0].Vec
				got, _, err := p.Single(q, typ)
				if err != nil {
					t.Fatal(err)
				}
				want := brute(items, m, q, typ)
				if !sameAnswers(got.Answers(), want) {
					t.Fatalf("%s %v trial %d: answers differ\n got %v\nwant %v",
						name, typ, trial, got.Answers(), want)
				}
			}
		}
	}
}

func TestSingleValidation(t *testing.T) {
	p, err := New(scanEngine(t, testDB(4, 30, 2)), vec.Euclidean{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Single(vec.Vector{0, 0}, query.NewKNN(0)); err == nil {
		t.Error("invalid type accepted")
	}
	if _, _, err := p.Single(nil, query.NewKNN(1)); err == nil {
		t.Error("empty query vector accepted")
	}
}

func TestSingleStats(t *testing.T) {
	items := testDB(5, 100, 3)
	p, err := New(scanEngine(t, items), vec.Euclidean{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := p.Single(vec.Vector{0.5, 0.5, 0.5}, query.NewKNN(5))
	if err != nil {
		t.Fatal(err)
	}
	if st.Queries != 1 {
		t.Errorf("Queries = %d", st.Queries)
	}
	if st.DistCalcs != 100 {
		t.Errorf("scan DistCalcs = %d, want 100 (one per item)", st.DistCalcs)
	}
	wantPages := int64((100 + 15) / 16)
	if st.PagesRead != wantPages || st.PageVisits != wantPages {
		t.Errorf("PagesRead=%d PageVisits=%d, want %d", st.PagesRead, st.PageVisits, wantPages)
	}
}

func TestXTreeSingleReadsFewerPagesThanScan(t *testing.T) {
	const dim = 3 // low dimension: the index should be selective
	items := testDB(6, 2000, dim)
	ps, err := New(scanEngine(t, items), vec.Euclidean{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	px, err := New(xtreeEngine(t, items, dim), vec.Euclidean{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := vec.Vector{0.5, 0.5, 0.5}
	_, ss, err := ps.Single(q, query.NewKNN(10))
	if err != nil {
		t.Fatal(err)
	}
	_, sx, err := px.Single(q, query.NewKNN(10))
	if err != nil {
		t.Fatal(err)
	}
	if sx.PagesRead >= ss.PagesRead {
		t.Errorf("xtree read %d pages, scan %d — index has no selectivity in 3-d", sx.PagesRead, ss.PagesRead)
	}
	if sx.DistCalcs >= ss.DistCalcs {
		t.Errorf("xtree computed %d distances, scan %d", sx.DistCalcs, ss.DistCalcs)
	}
}

// TestMultiMatchesSingle is the central correctness test: for every engine,
// avoidance mode, and query type mix, a completed multiple similarity query
// returns exactly the same answers as independent single queries.
func TestMultiMatchesSingle(t *testing.T) {
	const dim = 4
	items := testDB(7, 600, dim)
	m := vec.Euclidean{}
	rng := rand.New(rand.NewSource(8))

	queries := make([]Query, 12)
	for i := range queries {
		var typ query.Type
		switch i % 3 {
		case 0:
			typ = query.NewKNN(7)
		case 1:
			typ = query.NewRange(0.45)
		default:
			typ = query.NewBoundedKNN(4, 0.6)
		}
		queries[i] = Query{ID: uint64(i), Vec: testDB(rng.Int63(), 1, dim)[0].Vec, Type: typ}
	}

	engines := map[string]func() engine.Engine{
		"scan":  func() engine.Engine { return scanEngine(t, items) },
		"xtree": func() engine.Engine { return xtreeEngine(t, items, dim) },
	}
	modes := []AvoidanceMode{AvoidBoth, AvoidOff, AvoidLemma1, AvoidLemma2}

	for name, mk := range engines {
		for _, mode := range modes {
			p, err := New(mk(), m, Options{Avoidance: mode})
			if err != nil {
				t.Fatal(err)
			}
			results, _, err := p.MultiQuery(queries)
			if err != nil {
				t.Fatal(err)
			}
			for i, q := range queries {
				want := brute(items, m, q.Vec, q.Type)
				if !sameAnswers(results[i].Answers(), want) {
					t.Fatalf("%s/%v: query %d differs from brute force", name, mode, i)
				}
			}
		}
	}
}

// TestIncrementalFirstQueryComplete checks Definition 4: after one call,
// the first query is complete and the others are subsets of their full
// answers.
func TestIncrementalFirstQueryComplete(t *testing.T) {
	const dim = 4
	items := testDB(9, 500, dim)
	m := vec.Euclidean{}
	e := xtreeEngine(t, items, dim)
	p, err := New(e, m, Options{})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(10))
	queries := make([]Query, 8)
	for i := range queries {
		queries[i] = Query{ID: uint64(i), Vec: testDB(rng.Int63(), 1, dim)[0].Vec, Type: query.NewKNN(5)}
	}

	s := p.NewSession()
	results, _, err := s.MultiQuery(queries)
	if err != nil {
		t.Fatal(err)
	}
	// First query: complete.
	if want := brute(items, m, queries[0].Vec, queries[0].Type); !sameAnswers(results[0].Answers(), want) {
		t.Fatal("first query incomplete after one call")
	}
	// Others: subset check — every partial answer is a true answer.
	for i := 1; i < len(queries); i++ {
		full := brute(items, m, queries[i].Vec, query.NewRange(math.Inf(1)))
		fullDist := make(map[store.ItemID]float64, len(full))
		for _, a := range full {
			fullDist[a.ID] = a.Dist
		}
		for _, a := range results[i].Answers() {
			want, ok := fullDist[a.ID]
			if !ok || math.Abs(a.Dist-want) > 1e-12 {
				t.Fatalf("query %d: partial answer %v has wrong distance", i, a)
			}
		}
	}
}

// TestSessionBufferingSavesIO checks §5.1: in subsequent calls, pages
// already processed for a query are not loaded again, so a full session
// over m queries costs at most the union of relevant pages.
func TestSessionBufferingSavesIO(t *testing.T) {
	const dim = 8
	items := testDB(11, 800, dim)
	m := vec.Euclidean{}
	rng := rand.New(rand.NewSource(12))

	queries := make([]Query, 20)
	for i := range queries {
		queries[i] = Query{ID: uint64(i), Vec: testDB(rng.Int63(), 1, dim)[0].Vec, Type: query.NewKNN(10)}
	}

	// Cost of m independent single queries on a fresh scan engine.
	pSingle, err := New(scanEngine(t, items), m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var singlePages int64
	for _, q := range queries {
		_, st, err := pSingle.Single(q.Vec, q.Type)
		if err != nil {
			t.Fatal(err)
		}
		singlePages += st.PagesRead
	}

	// Cost of the same queries as one multiple similarity query.
	pMulti, err := New(scanEngine(t, items), m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := pMulti.MultiQuery(queries)
	if err != nil {
		t.Fatal(err)
	}
	pages := int64(pMulti.Engine().NumPages())
	if st.PagesRead != pages {
		t.Errorf("multi-query scan read %d pages, want exactly one pass (%d)", st.PagesRead, pages)
	}
	if singlePages != pages*int64(len(queries)) {
		t.Errorf("single queries read %d pages, want %d", singlePages, pages*int64(len(queries)))
	}
}

// TestAvoidanceSavesDistanceCalcs checks §5.2: with avoidance on, fewer
// distance calculations happen, and answers stay identical (already checked
// above).
func TestAvoidanceSavesDistanceCalcs(t *testing.T) {
	const dim = 8
	items := testDB(13, 1500, dim)
	m := vec.Euclidean{}
	rng := rand.New(rand.NewSource(14))
	queries := make([]Query, 30)
	for i := range queries {
		queries[i] = Query{ID: uint64(i), Vec: testDB(rng.Int63(), 1, dim)[0].Vec, Type: query.NewKNN(10)}
	}

	run := func(mode AvoidanceMode) Stats {
		p, err := New(scanEngine(t, items), m, Options{Avoidance: mode})
		if err != nil {
			t.Fatal(err)
		}
		_, st, err := p.MultiQuery(queries)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	off := run(AvoidOff)
	on := run(AvoidBoth)
	if off.Avoided != 0 || off.AvoidTries != 0 || off.MatrixDistCalcs != 0 {
		t.Errorf("AvoidOff produced avoidance stats: %+v", off)
	}
	if on.Avoided == 0 {
		t.Error("AvoidBoth avoided nothing")
	}
	if on.DistCalcs >= off.DistCalcs {
		t.Errorf("avoidance did not reduce distance calcs: %d vs %d", on.DistCalcs, off.DistCalcs)
	}
	if on.DistCalcs+on.Avoided != off.DistCalcs {
		t.Errorf("avoided (%d) + computed (%d) != baseline (%d)", on.Avoided, on.DistCalcs, off.DistCalcs)
	}
	wantMatrix := int64(len(queries) * (len(queries) - 1) / 2)
	if on.MatrixDistCalcs != wantMatrix {
		t.Errorf("MatrixDistCalcs = %d, want %d", on.MatrixDistCalcs, wantMatrix)
	}
}

func TestMultiQueryValidation(t *testing.T) {
	items := testDB(15, 60, 2)
	p, err := New(scanEngine(t, items), vec.Euclidean{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := p.NewSession()
	if _, _, err := s.MultiQuery(nil); err == nil {
		t.Error("empty batch accepted")
	}
	q := Query{ID: 1, Vec: vec.Vector{0, 0}, Type: query.NewKNN(2)}
	if _, _, err := s.MultiQuery([]Query{q, q}); err == nil {
		t.Error("duplicate IDs in one call accepted")
	}
	if _, _, err := s.MultiQuery([]Query{{ID: 2, Vec: nil, Type: query.NewKNN(1)}}); err == nil {
		t.Error("empty vector accepted")
	}
	if _, _, err := s.MultiQuery([]Query{{ID: 3, Vec: vec.Vector{1, 1}, Type: query.NewKNN(0)}}); err == nil {
		t.Error("invalid type accepted")
	}
	// ID reuse with a different object.
	if _, _, err := s.MultiQuery([]Query{q}); err != nil {
		t.Fatal(err)
	}
	q2 := Query{ID: 1, Vec: vec.Vector{9, 9}, Type: query.NewKNN(2)}
	if _, _, err := s.MultiQuery([]Query{q2}); err == nil {
		t.Error("ID reuse with different vector accepted")
	}
}

func TestMultiQueryRepeatedFirstQueryIsFree(t *testing.T) {
	items := testDB(16, 200, 3)
	p, err := New(scanEngine(t, items), vec.Euclidean{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := p.NewSession()
	q := Query{ID: 7, Vec: vec.Vector{0.1, 0.2, 0.3}, Type: query.NewKNN(3)}
	first, st1, err := s.MultiQuery([]Query{q})
	if err != nil {
		t.Fatal(err)
	}
	if st1.PagesRead == 0 {
		t.Fatal("first call read nothing")
	}
	again, st2, err := s.MultiQuery([]Query{q})
	if err != nil {
		t.Fatal(err)
	}
	if st2.PagesRead != 0 || st2.DistCalcs != 0 {
		t.Errorf("repeated query cost I/O or CPU: %+v", st2)
	}
	if !sameAnswers(first[0].Answers(), again[0].Answers()) {
		t.Error("buffered answers differ")
	}
}

func TestMultiQuerySurfacesDiskErrors(t *testing.T) {
	items := testDB(17, 100, 2)
	e, err := scan.New(items, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	e.Pager().Disk().(*store.Disk).FailOn(func(pid store.PageID) error {
		if pid == 3 {
			return boom
		}
		return nil
	})
	p, err := New(e, vec.Euclidean{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Single(vec.Vector{0, 0}, query.NewKNN(1)); !errors.Is(err, boom) {
		t.Errorf("single query did not surface disk error: %v", err)
	}
	s := p.NewSession()
	if _, _, err := s.MultiQuery([]Query{{ID: 1, Vec: vec.Vector{0, 0}, Type: query.NewKNN(1)}}); !errors.Is(err, boom) {
		t.Errorf("multi query did not surface disk error: %v", err)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Queries: 1, PagesRead: 2, PageVisits: 3, DistCalcs: 4, MatrixDistCalcs: 5, AvoidTries: 6, Avoided: 7}
	sum := a.Add(a)
	if sum.Queries != 2 || sum.PagesRead != 4 || sum.PageVisits != 6 ||
		sum.DistCalcs != 8 || sum.MatrixDistCalcs != 10 || sum.AvoidTries != 12 || sum.Avoided != 14 {
		t.Errorf("Add = %+v", sum)
	}
	if a.TotalDistCalcs() != 9 {
		t.Errorf("TotalDistCalcs = %d", a.TotalDistCalcs())
	}
}

// TestDynamicQueryArrival simulates the ExploreNeighborhoods pattern of
// §5.1: answers of the first query become new query objects in the next
// call, and pages loaded for Q2 opportunistically serve them.
func TestDynamicQueryArrival(t *testing.T) {
	const dim = 6
	items := testDB(18, 700, dim)
	m := vec.Euclidean{}
	e := xtreeEngine(t, items, dim)
	p, err := New(e, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := p.NewSession()

	q0 := Query{ID: 1000, Vec: items[0].Vec, Type: query.NewKNN(5)}
	q1 := Query{ID: 1001, Vec: items[1].Vec, Type: query.NewKNN(5)}
	res, _, err := s.MultiQuery([]Query{q0, q1})
	if err != nil {
		t.Fatal(err)
	}

	// Promote answers of Q0 to query objects, as the transformed scheme does.
	batch := []Query{q1}
	for _, a := range res[0].Answers() {
		batch = append(batch, Query{ID: uint64(a.ID), Vec: items[a.ID].Vec, Type: query.NewKNN(5)})
	}
	res2, _, err := s.MultiQuery(batch)
	if err != nil {
		t.Fatal(err)
	}
	if want := brute(items, m, q1.Vec, q1.Type); !sameAnswers(res2[0].Answers(), want) {
		t.Fatal("Q1 incomplete after becoming the first query")
	}

	// Finish everything and verify against brute force.
	for i := 1; i < len(batch); i++ {
		r, _, err := s.MultiQuery(batch[i:])
		if err != nil {
			t.Fatal(err)
		}
		want := brute(items, m, batch[i].Vec, batch[i].Type)
		if !sameAnswers(r[0].Answers(), want) {
			t.Fatalf("dynamic query %d incorrect", i)
		}
	}
}

// TestMultiEnginesAgree cross-checks that scan and X-tree multi-query
// processing produce byte-identical ordered answers.
func TestMultiEnginesAgree(t *testing.T) {
	const dim = 5
	items := testDB(19, 400, dim)
	m := vec.Euclidean{}
	rng := rand.New(rand.NewSource(20))
	queries := make([]Query, 10)
	for i := range queries {
		queries[i] = Query{ID: uint64(i), Vec: testDB(rng.Int63(), 1, dim)[0].Vec, Type: query.NewKNN(8)}
	}

	ps, err := New(scanEngine(t, items), m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	px, err := New(xtreeEngine(t, items, dim), m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rs, _, err := ps.MultiQuery(queries)
	if err != nil {
		t.Fatal(err)
	}
	rx, _, err := px.MultiQuery(queries)
	if err != nil {
		t.Fatal(err)
	}
	for i := range queries {
		if !sameAnswers(rs[i].Answers(), rx[i].Answers()) {
			t.Fatalf("query %d: scan and xtree disagree", i)
		}
	}
}

// TestAnswerOrderIsSorted double-checks result ordering invariants on the
// multi-query path.
func TestAnswerOrderIsSorted(t *testing.T) {
	items := testDB(21, 300, 4)
	p, err := New(scanEngine(t, items), vec.Euclidean{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	queries := []Query{
		{ID: 1, Vec: items[3].Vec, Type: query.NewRange(0.7)},
		{ID: 2, Vec: items[4].Vec, Type: query.NewKNN(12)},
	}
	res, _, err := p.MultiQuery(queries)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		as := r.Answers()
		if !sort.SliceIsSorted(as, func(x, y int) bool {
			if as[x].Dist != as[y].Dist {
				return as[x].Dist < as[y].Dist
			}
			return as[x].ID < as[y].ID
		}) {
			t.Errorf("query %d answers unsorted", i)
		}
	}
}

// TestXTreeMultiQueryDoesNotInflateCPU guards the bootstrap behaviour: on a
// selective index, processing a batch as one multiple similarity query must
// not cost more distance calculations than the equivalent single queries
// (the failure mode is sharing every page with queries whose query distance
// is still unbounded).
func TestXTreeMultiQueryDoesNotInflateCPU(t *testing.T) {
	const dim = 6
	items := testDB(30, 3000, dim)
	m := vec.Euclidean{}
	queries := make([]Query, 25)
	rng := rand.New(rand.NewSource(31))
	for i := range queries {
		queries[i] = Query{ID: uint64(i), Vec: items[rng.Intn(len(items))].Vec.Clone(), Type: query.NewKNN(10)}
	}

	pSingle, err := New(xtreeEngine(t, items, dim), m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var singles Stats
	for _, q := range queries {
		_, st, err := pSingle.Single(q.Vec, q.Type)
		if err != nil {
			t.Fatal(err)
		}
		singles = singles.Add(st)
	}

	pMulti, err := New(xtreeEngine(t, items, dim), m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, multi, err := pMulti.MultiQuery(queries)
	if err != nil {
		t.Fatal(err)
	}

	// Page sharing on a very selective index with independent queries is
	// the worst case for CPU (the paper's X-tree CPU gain is likewise its
	// smallest effect): allow a bounded overhead in exchange for the I/O
	// savings asserted below.
	if multi.TotalDistCalcs() > singles.DistCalcs*13/10 {
		t.Errorf("multi-query cost %d distance calcs, singles %d", multi.TotalDistCalcs(), singles.DistCalcs)
	}
	if multi.PagesRead > singles.PagesRead {
		t.Errorf("multi-query read %d pages, singles %d", multi.PagesRead, singles.PagesRead)
	}
}

// TestBootstrapSkipsRangeQueries: range queries have a finite query
// distance from the start, so no bootstrap page reads should happen for a
// batch of selective range queries beyond the pages their plans require.
func TestBootstrapSkipsRangeQueries(t *testing.T) {
	const dim = 4
	items := testDB(32, 1000, dim)
	p, err := New(xtreeEngine(t, items, dim), vec.Euclidean{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	queries := []Query{
		{ID: 1, Vec: items[1].Vec, Type: query.NewRange(0.05)},
		{ID: 2, Vec: items[2].Vec, Type: query.NewRange(0.05)},
		{ID: 3, Vec: items[3].Vec, Type: query.NewRange(0.05)},
	}
	results, _, err := p.MultiQuery(queries)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		want := brute(items, vec.Euclidean{}, q.Vec, q.Type)
		if !sameAnswers(results[i].Answers(), want) {
			t.Fatalf("range query %d incorrect under batching", i)
		}
	}
}

// TestMultiMatchesSingleProperty is a randomized end-to-end property test:
// for random datasets, engines, avoidance modes, and query mixes, the
// completed multiple similarity query equals brute force.
func TestMultiMatchesSingleProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 2 + rng.Intn(5)
		items := testDB(rng.Int63(), 150+rng.Intn(250), dim)

		var eng engine.Engine
		if rng.Intn(2) == 0 {
			eng = func() engine.Engine {
				e, err := scan.New(items, 8+rng.Intn(24), 0)
				if err != nil {
					t.Fatal(err)
				}
				return e
			}()
		} else {
			tr, err := xtree.Bulk(items, dim, xtree.Config{
				LeafCapacity: 8 + rng.Intn(24),
				DirFanout:    4 + rng.Intn(8),
				BufferPages:  0,
			})
			if err != nil {
				t.Fatal(err)
			}
			eng = tr
		}
		mode := []AvoidanceMode{AvoidBoth, AvoidOff, AvoidLemma1, AvoidLemma2}[rng.Intn(4)]
		p, err := New(eng, vec.Euclidean{}, Options{Avoidance: mode})
		if err != nil {
			t.Fatal(err)
		}

		m := 2 + rng.Intn(10)
		queries := make([]Query, m)
		for i := range queries {
			var typ query.Type
			switch rng.Intn(3) {
			case 0:
				typ = query.NewKNN(1 + rng.Intn(12))
			case 1:
				typ = query.NewRange(rng.Float64() * 0.8)
			default:
				typ = query.NewBoundedKNN(1+rng.Intn(8), rng.Float64()*0.9)
			}
			queries[i] = Query{ID: uint64(i), Vec: items[rng.Intn(len(items))].Vec.Clone(), Type: typ}
		}

		results, _, err := p.MultiQuery(queries)
		if err != nil {
			t.Fatal(err)
		}
		for i, q := range queries {
			if !sameAnswers(results[i].Answers(), brute(items, vec.Euclidean{}, q.Vec, q.Type)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestRankingEmitsAscendingAndComplete: the incremental ranking iterator
// yields exactly the whole database in ascending (distance, ID) order.
func TestRankingEmitsAscendingAndComplete(t *testing.T) {
	const dim = 4
	items := testDB(50, 300, dim)
	for _, mk := range []func() engine.Engine{
		func() engine.Engine { return scanEngine(t, items) },
		func() engine.Engine { return xtreeEngine(t, items, dim) },
	} {
		p, err := New(mk(), vec.Euclidean{}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		q := items[17].Vec
		r, err := p.Ranking(q)
		if err != nil {
			t.Fatal(err)
		}
		want := brute(items, vec.Euclidean{}, q, query.NewKNN(len(items)))
		for i := range want {
			a, ok, err := r.Next()
			if err != nil || !ok {
				t.Fatalf("ranking ended early at %d: ok=%v err=%v", i, ok, err)
			}
			if a != want[i] {
				t.Fatalf("rank %d: got %+v, want %+v", i, a, want[i])
			}
		}
		if _, ok, _ := r.Next(); ok {
			t.Fatal("ranking emitted more objects than the database holds")
		}
	}
}

// TestRankingIsLazy: stopping after k results on an index engine reads
// only a fraction of the pages.
func TestRankingIsLazy(t *testing.T) {
	const dim = 4
	items := testDB(51, 2000, dim)
	p, err := New(xtreeEngine(t, items, dim), vec.Euclidean{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := p.Ranking(items[99].Vec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, ok, err := r.Next(); !ok || err != nil {
			t.Fatal("ranking ended early")
		}
	}
	if got := r.Stats().PagesRead; got >= int64(p.Engine().NumPages())/2 {
		t.Errorf("10-NN ranking visited %d of %d pages", got, p.Engine().NumPages())
	}
	if _, err := p.Ranking(nil); err == nil {
		t.Error("empty query vector accepted")
	}
}

// TestRankingSurfacesErrors: a failing disk stops the iterator and the
// error sticks.
func TestRankingSurfacesErrors(t *testing.T) {
	items := testDB(52, 100, 2)
	e, err := scan.New(items, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	e.Pager().Disk().(*store.Disk).FailOn(func(store.PageID) error { return boom })
	p, err := New(e, vec.Euclidean{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := p.Ranking(items[0].Vec)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Next(); !errors.Is(err, boom) {
		t.Fatalf("error not surfaced: %v", err)
	}
	if _, _, err := r.Next(); !errors.Is(err, boom) {
		t.Fatalf("error did not stick: %v", err)
	}
}
