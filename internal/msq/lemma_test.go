package msq

import (
	"fmt"
	"math/rand"
	"testing"

	"metricdb/internal/query"
	"metricdb/internal/vec"
)

// Property-based soundness tests for the Lemma 1/2 avoidance: over random
// workloads, avoidance must never skip an object whose true distance is
// within the query distance (checked by comparing the avoided answers with
// both the unavoided answers and an exhaustive brute-force evaluation),
// and the computed and avoided calculations must exactly partition the
// work the AvoidOff run performs: DistCalcs + Avoided == off.DistCalcs.
// Both properties are checked sequentially and at pipeline width 4.

// randomWorkload draws dataset dimensions and a mixed query batch from rng.
func randomWorkload(rng *rand.Rand) (queries []Query, n, dim int) {
	n = 80 + rng.Intn(240)
	dim = 2 + rng.Intn(5)
	queries = make([]Query, 3+rng.Intn(5))
	for i := range queries {
		v := make(vec.Vector, dim)
		for j := range v {
			v[j] = rng.Float64()
		}
		var tp query.Type
		switch rng.Intn(3) {
		case 0:
			tp = query.NewKNN(1 + rng.Intn(12))
		case 1:
			tp = query.NewRange(0.2 + rng.Float64()*0.6)
		default:
			tp = query.NewBoundedKNN(1+rng.Intn(12), 0.3+rng.Float64()*0.6)
		}
		queries[i] = Query{ID: uint64(i), Vec: v, Type: tp}
	}
	return queries, n, dim
}

func TestLemmaSoundnessProperty(t *testing.T) {
	const rounds = 20
	seeds := rounds
	if testing.Short() {
		seeds = 6
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + seed)))
			queries, n, dim := randomWorkload(rng)
			items := testDB(int64(seed), n, dim)
			m := vec.Euclidean{}

			type outcome struct {
				answers [][]query.Answer
				stats   Stats
			}
			run := func(mode AvoidanceMode, width int) outcome {
				var eng = scanEngine(t, items)
				if seed%2 == 1 {
					eng = xtreeEngine(t, items, dim)
				}
				proc, err := New(eng, m, Options{Avoidance: mode, Concurrency: width})
				if err != nil {
					t.Fatal(err)
				}
				lists, stats, err := proc.NewSession().MultiQueryAll(queries)
				if err != nil {
					t.Fatal(err)
				}
				var o outcome
				o.stats = stats
				for _, l := range lists {
					o.answers = append(o.answers, append([]query.Answer(nil), l.Answers()...))
				}
				return o
			}

			off := run(AvoidOff, 1)
			for _, width := range []int{1, 4} {
				for _, mode := range []AvoidanceMode{AvoidBoth, AvoidLemma1, AvoidLemma2} {
					o := run(mode, width)
					// Soundness: a wrongly avoided calculation would drop an
					// in-range object from some answer list.
					if diag, ok := identicalAnswers(off.answers, o.answers); !ok {
						t.Fatalf("mode %v width %d: answers differ from AvoidOff: %s", mode, width, diag)
					}
					// Exactness of the accounting: every offered (item,
					// query) pair is either computed or avoided.
					if got := o.stats.DistCalcs + o.stats.Avoided; got != off.stats.DistCalcs {
						t.Errorf("mode %v width %d: DistCalcs %d + Avoided %d = %d, want AvoidOff DistCalcs %d",
							mode, width, o.stats.DistCalcs, o.stats.Avoided, got, off.stats.DistCalcs)
					}
				}
			}

			// Anchor against ground truth, independent of any processor
			// code path.
			for i, q := range queries {
				want := brute(items, m, q.Vec, q.Type)
				if !sameAnswers(off.answers[i], want) {
					t.Fatalf("query %d: AvoidOff answers disagree with brute force", i)
				}
			}
		})
	}
}
