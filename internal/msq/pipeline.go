package msq

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"metricdb/internal/engine"
	"metricdb/internal/obs"
	"metricdb/internal/store"
	"metricdb/internal/vec"
)

// This file implements the intra-server parallel pipeline for multiple
// similarity queries: a single coordinator walks the page plan exactly like
// the sequential loop in run(), while
//
//   - a prefetcher goroutine overlaps page I/O with evaluation for pages
//     whose read is already inevitable, and
//   - a bounded worker pool evaluates each page's items against all active
//     queries concurrently, merging per-query results through sharded,
//     mutex-guarded answer lists.
//
// The output is bit-identical to the sequential path, and so is the disk
// read sequence. The argument:
//
//  1. Page decisions are made at page barriers. The coordinator decides a
//     page's active query set only after every earlier page is fully merged
//     into the answer lists, so each decision sees exactly the state the
//     sequential loop would see.
//  2. A merged answer list is a pure function of the set of (item, dist)
//     pairs offered to it — insertion order cannot change the k best under
//     the (dist, ID) tie-break, and range lists sort on read. Avoidance only
//     ever skips items whose distance provably exceeds the query's pruning
//     distance at some earlier moment, and pruning distances only shrink, so
//     a skipped item could never have been in the list at the barrier either.
//     Hence the post-page state — and with it every later decision — is
//     independent of worker interleaving.
//  3. Reads stay in plan order. The prefetcher runs ahead only through pages
//     whose read condition cannot be invalidated by future tightening: pages
//     with a zero lower bound (every scan page) and, when the first query is
//     a range query, pages within its constant ε. At any other page it
//     parks until the coordinator has handled that page itself. Reads are
//     therefore issued in exactly the sequential order, which keeps not just
//     the read count but also the sequential/random split of the simulated
//     disk identical.
//
// Within a page, workers evaluate disjoint item ranges against a snapshot of
// the pruning distances taken at the page barrier. The snapshot makes the
// avoidance decisions a pure function of (page, snapshot, matrix) — i.e.
// identical across all widths >= 2 — and still sound, because a snapshot
// bound is a valid (if slightly stale) upper bound on the final query
// distance. The bounded distance kernel's abandonment limit (abandonLimit)
// is likewise derived from the snapshot only, so early-abandonment
// decisions are snapshot-pure too. Only DistCalcs/Avoided/AvoidTries/
// PartialAbandoned may differ from the width-1 path, which tightens bounds
// item by item; answers and I/O never do.

// workerPool is a bounded pool of goroutines executing closures. One pool is
// created per multi-query pass and torn down when the pass ends. Each task
// receives the stable index of the worker goroutine running it, so callers
// can maintain per-worker scratch buffers without locking: a worker index
// is owned by exactly one goroutine at a time.
type workerPool struct {
	tasks chan func(worker int)
	wg    sync.WaitGroup
}

func newWorkerPool(n int) *workerPool {
	p := &workerPool{tasks: make(chan func(worker int))}
	for i := 0; i < n; i++ {
		p.wg.Add(1)
		go func(worker int) {
			defer p.wg.Done()
			for fn := range p.tasks {
				fn(worker)
			}
		}(i)
	}
	return p
}

func (p *workerPool) close() {
	close(p.tasks)
	p.wg.Wait()
}

// forEachChunk splits [0, n) into at most maxChunks contiguous ranges,
// runs fn on the pool for each, and blocks until all complete. fn must not
// dispatch further pool work (the caller is never a pool worker, so a
// single level cannot deadlock). The single-chunk fast path runs inline on
// the caller as worker 0; no pool task is in flight then, so the worker-0
// scratch is safe to use.
func (p *workerPool) forEachChunk(n, maxChunks int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	chunks := maxChunks
	if chunks > n {
		chunks = n
	}
	if chunks <= 1 {
		fn(0, 0, n)
		return
	}
	size := (n + chunks - 1) / chunks
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		wg.Add(1)
		lo, hi := lo, hi
		p.tasks <- func(worker int) {
			defer wg.Done()
			fn(worker, lo, hi)
		}
	}
	wg.Wait()
}

// fetched is one prefetched page delivery, tagged with its plan index.
type fetched struct {
	idx  int
	page *store.Page
	err  error
}

// prefetchFloor returns a value the first query's pruning distance can never
// drop below: 0 for bounded kinds (k-NN distances can tighten arbitrarily)
// and the constant ε for range queries. A plan reference with
// MinDist <= floor is guaranteed to be read, so it is safe to prefetch.
func prefetchFloor(first *queryState) float64 {
	if first.q.Type.Bounded() {
		return 0
	}
	return first.q.Type.Range
}

// prefetch reads the guaranteed pages of the plan ahead of the coordinator,
// in plan order. At every non-prefetchable reference it consumes one resume
// token — sent by the coordinator after it has handled that reference itself
// — so that the global disk read sequence is exactly the plan order the
// sequential path produces. done aborts the prefetcher on early exit.
func (s *Session) prefetch(plan []engine.PageRef, prefetchable []bool, out chan<- fetched, resume <-chan struct{}, done <-chan struct{}) {
	defer close(out)
	for i := range plan {
		if !prefetchable[i] {
			select {
			case <-resume:
				continue
			case <-done:
				return
			}
		}
		page, err := s.proc.eng.ReadPage(plan[i].ID)
		select {
		case out <- fetched{idx: i, page: page, err: err}:
		case <-done:
			return
		}
		if err != nil {
			return
		}
	}
}

// runPipeline is the concurrent counterpart of run()'s page loop. width is
// the pipeline width (>= 2): the worker-pool size and the prefetch lookahead.
// The coordinator checks ctx once per page barrier; on cancellation the
// deferred done close aborts the prefetcher before the error returns.
func (s *Session) runPipeline(ctx context.Context, plan []engine.PageRef, states []*queryState, matrix [][]float64, pos []int, stats *Stats, width int) error {
	first := states[0]
	tr := s.proc.tracer
	traced := tr.Enabled()
	ex := s.explain

	// Decide, from static state only, which plan references the prefetcher
	// may read ahead of the coordinator. first.processed is snapshotted via
	// this slice: entries added during the loop are for references already
	// consumed (engines plan each page at most once), so the snapshot stays
	// valid for the references ahead.
	floor := prefetchFloor(first)
	prefetchable := make([]bool, len(plan))
	for i, ref := range plan {
		if _, seen := first.processed[ref.ID]; !seen && ref.MinDist <= floor {
			prefetchable[i] = true
		}
	}

	pool := newWorkerPool(width)
	defer pool.close()

	out := make(chan fetched, width) // bounded lookahead
	resume := make(chan struct{}, len(plan))
	done := make(chan struct{})
	defer close(done)
	go s.prefetch(plan, prefetchable, out, resume, done)

	active := make([]*queryState, 0, len(states))
	activePos := make([]int, 0, len(states))
	scratch := newPageScratch(width, len(states))

	for i, ref := range plan {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("msq: multiple query: %w", err)
		}
		var page *store.Page
		var waitStart time.Time
		if traced || ex != nil {
			waitStart = time.Now()
		}
		if prefetchable[i] {
			// The read condition of a prefetchable page cannot be
			// invalidated (MinDist <= floor <= queryDist at all times), so
			// the page is always consumed here — prune and processed were
			// ruled out when prefetchable was computed.
			f, ok := <-out
			if !ok || f.idx != i {
				return fmt.Errorf("msq: pipeline prefetcher desynchronized at plan index %d", i)
			}
			if traced {
				tr.ObserveSince(obs.PhasePageWait, waitStart)
			}
			if ex != nil {
				ex.observe(obs.PhasePageWait, time.Since(waitStart))
			}
			if f.err != nil {
				return fmt.Errorf("msq: multiple query: %w", f.err)
			}
			page = f.page
		} else {
			if ref.MinDist > first.queryDist() {
				break // prune_pages for Q1; later refs are even farther
			}
			if _, ok := first.processed[ref.ID]; ok {
				resume <- struct{}{}
				continue // already examined for Q1 in an earlier call
			}
			var err error
			page, err = s.proc.eng.ReadPage(ref.ID)
			resume <- struct{}{} // read issued; prefetcher may run ahead again
			if traced {
				tr.ObserveSince(obs.PhasePageWait, waitStart)
			}
			if ex != nil {
				ex.observe(obs.PhasePageWait, time.Since(waitStart))
			}
			if err != nil {
				return fmt.Errorf("msq: multiple query: %w", err)
			}
		}

		active, activePos = s.decideActive(ref.ID, states, pos, active, activePos)
		stats.PageVisits += int64(len(active))
		if ex != nil {
			for _, p := range activePos {
				ex.prof[p].pagesVisited.Add(1)
			}
		}

		s.processPageConcurrent(pool, page, active, activePos, matrix, stats, width, scratch)

		for _, st := range active {
			st.processed[ref.ID] = struct{}{}
		}
	}
	return nil
}

// pageScratch holds per-page buffers reused across the plan loop; the page
// barrier guarantees no worker touches dists/snap once forEachChunk
// returns. qvecs/q32/filters are filled at the barrier and only read by
// workers. known is per-worker avoidance scratch ("AvoidingDists") and
// rowW the per-worker within-flag buffer of the row kernels: worker w
// exclusively owns index w while it runs, so the buffers survive across
// pages without locking or steady-state allocation.
type pageScratch struct {
	dists   []float64
	snap    []float64
	raise   []float64
	qvecs   []vec.Vector
	q32     [][]float32
	filters []*vec.QuantFilter
	known   [][]knownDist
	rowW    [][]bool
}

func newPageScratch(width, nStates int) *pageScratch {
	sc := &pageScratch{
		known: make([][]knownDist, width),
		rowW:  make([][]bool, width),
	}
	for w := range sc.known {
		sc.known[w] = make([]knownDist, 0, nStates)
		sc.rowW[w] = make([]bool, nStates)
	}
	return sc
}

// skippedDist marks an (item, query) slot whose distance was not fully
// computed — either avoided by the triangle inequality or abandoned by the
// bounded kernel. Proper metrics never produce NaN, so the sentinel cannot
// collide with a computed distance.
var skippedDist = math.NaN()

// processPageConcurrent evaluates one page against the active queries on the
// worker pool and merges the results. Phase 1 partitions the page's items:
// each worker computes (or avoids) the distances of its item range against
// every active query, using the page-start snapshot of the pruning
// distances both for the avoidance lemmas and for the bounded kernel's
// abandonment limit (abandonLimit) — so every phase-1 decision is a pure
// function of (page, snapshot, matrix) and identical across all widths
// >= 2. Phase 2
// shards the merge by query: each answer list is fed its page results in
// item order under the state's lock, reproducing the exact Consider
// sequence the sequential path would issue for that query. An abandoned
// distance exceeds the snapshot bound, which is an upper bound on the
// query's final pruning distance, so the skipped item could never have
// entered the answer list at any width.
func (s *Session) processPageConcurrent(pool *workerPool, page *store.Page, active []*queryState, activeIdx []int, matrix [][]float64, stats *Stats, width int, scratch *pageScratch) {
	nItems, nActive := len(page.Items), len(active)
	if nItems == 0 || nActive == 0 {
		return
	}
	mode := s.proc.opts.Avoidance

	if cap(scratch.dists) < nItems*nActive {
		scratch.dists = make([]float64, nItems*nActive)
	}
	if cap(scratch.snap) < nActive {
		scratch.snap = make([]float64, nActive)
		scratch.raise = make([]float64, nActive)
		scratch.qvecs = make([]vec.Vector, nActive)
		scratch.q32 = make([][]float32, nActive)
		scratch.filters = make([]*vec.QuantFilter, nActive)
	}
	dists := scratch.dists[:nItems*nActive]
	snap := scratch.snap[:nActive]
	for a, st := range active {
		snap[a] = st.queryDist()
	}

	avoiding := matrix != nil && mode != AvoidOff
	var raise []float64
	if avoiding {
		// Derived from the page-start snapshot only, like every other
		// phase-1 input, so abandonment decisions stay snapshot-pure.
		raise = lemma1Raises(activeIdx, matrix, snap, scratch.raise)
	}
	kernel := s.proc.metric.Kernel()
	tr := s.proc.tracer
	traced := tr.Enabled()
	// Layout dispatch happens at the barrier: the row inputs (query
	// vectors, f32 roundings, quantized filters) are gathered here by the
	// coordinator, so workers only read them. The row kernels take the
	// page-start snapshot as their limits — exactly the limit every
	// per-pair chunk twin below uses — so at any fixed width >= 2 the row
	// path's distances, within flags and abandon points are bit-identical
	// to the per-pair path's (for float64; f32 is the opted-in rounding).
	useRows, rowsF32 := s.rowPath(page, avoiding, nActive)
	rowsK := s.proc.rows
	var qvecs []vec.Vector
	var q32 [][]float32
	if useRows {
		if rowsF32 {
			q32 = scratch.q32[:nActive]
			for a, st := range active {
				q32[a] = st.f32()
			}
		} else {
			qvecs = scratch.qvecs[:nActive]
			for a, st := range active {
				qvecs[a] = st.q.Vec
			}
		}
	}
	filters := s.quantFilters(page, active, scratch.filters)
	var tries, avoided, filteredN atomic.Int64
	pool.forEachChunk(nItems, width, func(worker, lo, hi int) {
		known := scratch.known[worker][:0]
		var localTries, localAvoided, localCalcs, localAbandoned int64
		if useRows {
			// Row chunk: one kernel call per item covers the whole active
			// set. Shared by all observation modes — attribution is per
			// item, off the per-pair fast path.
			ex := s.explain
			observing := ex != nil || traced
			var chunkStart time.Time
			if observing {
				chunkStart = time.Now()
			}
			wOut := scratch.rowW[worker][:nActive]
			b := page.Cols
			for it := lo; it < hi; it++ {
				row := dists[it*nActive : (it+1)*nActive]
				var ab int
				if rowsF32 {
					ab = rowsK.RowWithinF32(q32, b, it, snap, row, wOut)
				} else {
					ab = rowsK.RowWithin(qvecs, b, it, snap, row, wOut)
				}
				localCalcs += int64(nActive)
				localAbandoned += int64(ab)
				if ex != nil {
					for a := range wOut {
						prof := &ex.prof[activeIdx[a]]
						prof.distCalcs.Add(1)
						if !wOut[a] {
							prof.abandoned.Add(1)
						}
					}
				}
				for a := range wOut {
					if !wOut[a] {
						row[a] = skippedDist
					}
				}
			}
			s.proc.metric.AddCalls(localCalcs, localAbandoned)
			if observing {
				kernelNs := time.Since(chunkStart)
				if ex != nil {
					ex.observe(obs.PhaseKernel, kernelNs)
				}
				if traced {
					tr.Observe(obs.PhaseKernel, kernelNs)
				}
			}
			return
		}
		if ex := s.explain; ex != nil {
			// Explain chunk twin: the same snapshot-pure decisions as the
			// loops below, plus per-query profile attribution and the
			// traced twin's avoid/kernel clock split. The known list is
			// per item and chunking is by item ranges, so attribution is
			// identical at every width >= 2. Keep in lockstep.
			chunkStart := time.Now()
			var avoidNs time.Duration
			for it := lo; it < hi; it++ {
				item := &page.Items[it]
				var codes []uint8
				if filters != nil {
					codes = page.Cols.ItemCodes(it)
				}
				row := dists[it*nActive : (it+1)*nActive]
				known = known[:0]
				for a := range active {
					pos := activeIdx[a]
					prof := &ex.prof[pos]
					limit := snap[a]
					if avoiding {
						t0 := time.Now()
						var pairTries int64
						av, byL1 := s.avoidableExplain(snap[a], pos, known, matrix, &pairTries)
						localTries += pairTries
						prof.tries.Add(pairTries)
						if av {
							localAvoided++
							if byL1 {
								prof.lemma1.Add(1)
							} else {
								prof.lemma2.Add(1)
							}
							row[a] = skippedDist
							avoidNs += time.Since(t0)
							continue
						}
						limit = abandonLimit(snap[a], raise[a], len(known))
						avoidNs += time.Since(t0)
					}
					if filters != nil {
						if f := filters[a]; f != nil && f.Exceeds(codes, snap[a]) {
							filteredN.Add(1)
							prof.filtered.Add(1)
							row[a] = skippedDist
							continue
						}
					}
					d, within := kernel.DistanceWithin(active[a].q.Vec, item.Vec, limit)
					localCalcs++
					prof.distCalcs.Add(1)
					if avoiding {
						known = append(known, knownDist{d: d, idx: int32(pos)})
					}
					if within {
						row[a] = d
					} else {
						row[a] = skippedDist
						localAbandoned++
						prof.abandoned.Add(1)
					}
				}
			}
			s.proc.metric.AddCalls(localCalcs, localAbandoned)
			tries.Add(localTries)
			avoided.Add(localAvoided)
			kernelNs := time.Since(chunkStart) - avoidNs
			if kernelNs < 0 {
				kernelNs = 0
			}
			ex.observe(obs.PhaseAvoid, avoidNs)
			ex.observe(obs.PhaseKernel, kernelNs)
			if traced {
				tr.Observe(obs.PhaseAvoid, avoidNs)
				tr.Observe(obs.PhaseKernel, kernelNs)
			}
			return
		}
		if traced {
			// Traced twin of the loop below: the same snapshot-pure
			// decisions, plus clock reads that split the chunk's wall time
			// into the avoidance and kernel phases. Keep in lockstep with
			// the untraced loop — the traced differential test pins that
			// answers and counters are identical.
			chunkStart := time.Now()
			var avoidNs time.Duration
			for it := lo; it < hi; it++ {
				item := &page.Items[it]
				var codes []uint8
				if filters != nil {
					codes = page.Cols.ItemCodes(it)
				}
				row := dists[it*nActive : (it+1)*nActive]
				known = known[:0]
				for a := range active {
					limit := snap[a]
					if avoiding {
						t0 := time.Now()
						if s.avoidable(snap[a], activeIdx[a], known, matrix, &localTries) {
							localAvoided++
							row[a] = skippedDist
							avoidNs += time.Since(t0)
							continue
						}
						limit = abandonLimit(snap[a], raise[a], len(known))
						avoidNs += time.Since(t0)
					}
					if filters != nil {
						if f := filters[a]; f != nil && f.Exceeds(codes, snap[a]) {
							filteredN.Add(1)
							row[a] = skippedDist
							continue
						}
					}
					d, within := kernel.DistanceWithin(active[a].q.Vec, item.Vec, limit)
					localCalcs++
					if avoiding {
						known = append(known, knownDist{d: d, idx: int32(activeIdx[a])})
					}
					if within {
						row[a] = d
					} else {
						row[a] = skippedDist
						localAbandoned++
					}
				}
			}
			s.proc.metric.AddCalls(localCalcs, localAbandoned)
			tries.Add(localTries)
			avoided.Add(localAvoided)
			tr.Observe(obs.PhaseAvoid, avoidNs)
			if d := time.Since(chunkStart) - avoidNs; d > 0 {
				tr.Observe(obs.PhaseKernel, d)
			} else {
				tr.Observe(obs.PhaseKernel, 0)
			}
			return
		}
		for it := lo; it < hi; it++ {
			item := &page.Items[it]
			var codes []uint8
			if filters != nil {
				codes = page.Cols.ItemCodes(it)
			}
			row := dists[it*nActive : (it+1)*nActive]
			known = known[:0]
			for a := range active {
				limit := snap[a]
				if avoiding {
					if s.avoidable(snap[a], activeIdx[a], known, matrix, &localTries) {
						localAvoided++
						row[a] = skippedDist
						continue
					}
					limit = abandonLimit(snap[a], raise[a], len(known))
				}
				if filters != nil {
					if f := filters[a]; f != nil && f.Exceeds(codes, snap[a]) {
						filteredN.Add(1)
						row[a] = skippedDist
						continue
					}
				}
				d, within := kernel.DistanceWithin(active[a].q.Vec, item.Vec, limit)
				localCalcs++
				if avoiding {
					known = append(known, knownDist{d: d, idx: int32(activeIdx[a])})
				}
				if within {
					row[a] = d
				} else {
					row[a] = skippedDist
					localAbandoned++
				}
			}
		}
		s.proc.metric.AddCalls(localCalcs, localAbandoned)
		tries.Add(localTries)
		avoided.Add(localAvoided)
	})
	stats.AvoidTries += tries.Load()
	stats.Avoided += avoided.Load()
	stats.QuantFiltered += filteredN.Load()
	s.proc.metric.AddFiltered(filteredN.Load())

	pool.forEachChunk(nActive, width, func(_, lo, hi int) {
		ex := s.explain
		var mergeStart time.Time
		if traced || ex != nil {
			mergeStart = time.Now()
		}
		for a := lo; a < hi; a++ {
			st := active[a]
			st.mu.Lock()
			for it := 0; it < nItems; it++ {
				if d := dists[it*nActive+a]; !math.IsNaN(d) {
					st.answers.Consider(page.Items[it].ID, d)
				}
			}
			st.mu.Unlock()
		}
		if traced {
			tr.ObserveSince(obs.PhaseMerge, mergeStart)
		}
		if ex != nil {
			ex.observe(obs.PhaseMerge, time.Since(mergeStart))
		}
	})
}
