package msq

import (
	"container/heap"
	"fmt"

	"metricdb/internal/engine"
	"metricdb/internal/query"
	"metricdb/internal/vec"
)

// Ranking is an incremental nearest-neighbor iterator in the style of
// Hjaltason and Samet's ranking algorithm [13], the algorithm the paper's
// determine_relevant_data_pages is based on: database objects are emitted
// in ascending distance from the query object, and data pages are read
// lazily in ascending lower-bound order — an object is emitted only once
// its distance is no larger than the lower bound of every unread page.
//
// Stopping after k results therefore reads exactly the pages an optimal
// k-NN query would read, without knowing k in advance; this is the natural
// building block for "give me more" exploration interfaces.
type Ranking struct {
	proc    *Processor
	q       vec.Vector
	plan    []engine.PageRef
	nextRef int
	pending answerHeap
	stats   Stats
	err     error
}

// answerHeap orders loaded-but-unemitted answers by (distance, ID).
type answerHeap []query.Answer

func (h answerHeap) Len() int { return len(h) }
func (h answerHeap) Less(i, j int) bool {
	if h[i].Dist != h[j].Dist {
		return h[i].Dist < h[j].Dist
	}
	return h[i].ID < h[j].ID
}
func (h answerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *answerHeap) Push(x any)   { *h = append(*h, x.(query.Answer)) }
func (h *answerHeap) Pop() any {
	old := *h
	n := len(old)
	a := old[n-1]
	*h = old[:n-1]
	return a
}

// Ranking starts an incremental ranking from q.
func (p *Processor) Ranking(q vec.Vector) (*Ranking, error) {
	if len(q) == 0 {
		return nil, fmt.Errorf("msq: empty query vector")
	}
	return &Ranking{
		proc: p,
		q:    q,
		plan: p.eng.Prepare(q).Plan(query.NewKNN(1).InitialQueryDist()),
	}, nil
}

// Next returns the next-nearest database object. ok is false when the
// database is exhausted (or after an error, which sticks).
func (r *Ranking) Next() (a query.Answer, ok bool, err error) {
	if r.err != nil {
		return query.Answer{}, false, r.err
	}
	for {
		// Emit the best pending answer once no unread page could beat it.
		if len(r.pending) > 0 {
			if r.nextRef >= len(r.plan) || r.pending[0].Dist <= r.plan[r.nextRef].MinDist {
				return heap.Pop(&r.pending).(query.Answer), true, nil
			}
		} else if r.nextRef >= len(r.plan) {
			return query.Answer{}, false, nil
		}
		// Otherwise load the next-closest page.
		ref := r.plan[r.nextRef]
		r.nextRef++
		page, err := r.proc.eng.ReadPage(ref.ID)
		if err != nil {
			r.err = fmt.Errorf("msq: ranking: %w", err)
			return query.Answer{}, false, r.err
		}
		r.stats.PagesRead++ // buffer hits included: counts page visits for the iterator
		r.stats.PageVisits++
		for i := range page.Items {
			d := r.proc.metric.Distance(r.q, page.Items[i].Vec)
			r.stats.DistCalcs++
			heap.Push(&r.pending, query.Answer{ID: page.Items[i].ID, Dist: d})
		}
	}
}

// Stats reports the work done so far. PagesRead counts page visits by the
// iterator (a visit served from the buffer costs no disk I/O; consult the
// engine's pager for disk-level statistics).
func (r *Ranking) Stats() Stats { return r.stats }
