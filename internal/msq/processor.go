package msq

import (
	"fmt"

	"metricdb/internal/engine"
	"metricdb/internal/obs"
	"metricdb/internal/query"
	"metricdb/internal/vec"
)

// AvoidanceMode selects which triangle-inequality lemmas the multi-query
// processor applies to avoid distance calculations.
type AvoidanceMode int

// Avoidance modes. The paper always uses both lemmas; the single-lemma
// modes exist for the ablation experiments.
const (
	// AvoidBoth applies Lemma 1 and Lemma 2 (the paper's method).
	AvoidBoth AvoidanceMode = iota
	// AvoidOff disables avoidance entirely.
	AvoidOff
	// AvoidLemma1 only skips objects far from a known query object
	// (dist(O,Qj) large, Qi close to Qj).
	AvoidLemma1
	// AvoidLemma2 only skips objects close to a known query object that
	// is far from Qi.
	AvoidLemma2
)

// String names the mode.
func (m AvoidanceMode) String() string {
	switch m {
	case AvoidBoth:
		return "both"
	case AvoidOff:
		return "off"
	case AvoidLemma1:
		return "lemma1"
	case AvoidLemma2:
		return "lemma2"
	default:
		return fmt.Sprintf("avoidance(%d)", int(m))
	}
}

// Layout selects which page representation the processor's inner loops
// consume. It is an execution choice, not a storage one: pages may carry
// any set of sibling representations, and the layout says which of them
// the distance loops read.
type Layout int

const (
	// LayoutAoS evaluates item vectors one at a time through the counting
	// metric — the original array-of-structs path, and the fallback for
	// pages without a columnar block.
	LayoutAoS Layout = iota
	// LayoutSoA runs the blocked row kernels over each page's contiguous
	// float64 block. Bit-identical to LayoutAoS in answers and in every
	// statistic: the row kernels share the scalar kernels' loop bodies.
	LayoutSoA
	// LayoutF32 runs the row kernels over the float32 sibling where that
	// is rank-safe (no avoidance interleaving), falling back to exact
	// float64 elsewhere. Distances differ from float64 by bounded
	// rounding (see DESIGN.md); answers are rank-identical for queries
	// whose decision margins exceed that bound.
	LayoutF32
	// LayoutQuant screens each (query, item) pair through the per-page
	// quantized codes first: pairs whose VA-file-style cell lower bound
	// already exceeds the pruning radius are dropped without an exact
	// calculation. Survivors are refined with the exact float64 kernel,
	// so answers and page reads are bit-identical to LayoutAoS; only the
	// CPU counters (DistCalcs, Avoided, AvoidTries, QuantFiltered) move.
	LayoutQuant
)

// String names the layout.
func (l Layout) String() string {
	switch l {
	case LayoutAoS:
		return "aos"
	case LayoutSoA:
		return "soa"
	case LayoutF32:
		return "f32"
	case LayoutQuant:
		return "quant"
	default:
		return fmt.Sprintf("layout(%d)", int(l))
	}
}

// Options tunes the processor.
type Options struct {
	// Avoidance selects the triangle-inequality mode (default AvoidBoth).
	Avoidance AvoidanceMode
	// Concurrency is the intra-server pipeline width: the number of worker
	// goroutines that evaluate a data page's items against the active
	// queries, plus a prefetcher that overlaps page I/O with evaluation.
	// 0 and 1 select the sequential path (today's behavior). Any width
	// produces bit-identical answers and an identical disk read sequence;
	// see internal/msq/pipeline.go for the determinism argument.
	Concurrency int
	// Layout selects the page representation the distance loops consume
	// (default LayoutAoS). Pages lacking the representation fall back to
	// the AoS path item by item.
	Layout Layout
}

// Query is one element of a multiple similarity query: a caller-chosen
// identity (used to associate buffered partial answers across incremental
// calls), the query object, and the query type.
type Query struct {
	ID   uint64
	Vec  vec.Vector
	Type query.Type
}

// Validate checks the query specification.
func (q Query) Validate() error {
	if len(q.Vec) == 0 {
		return fmt.Errorf("msq: query %d has an empty vector", q.ID)
	}
	if err := q.Type.Validate(); err != nil {
		return fmt.Errorf("msq: query %d: %w", q.ID, err)
	}
	return nil
}

// Processor evaluates similarity queries against one engine. It is the
// DB::similarity_query / DB::multiple_similarity_query implementation of
// the paper, parameterized by the physical organization.
type Processor struct {
	eng    engine.Engine
	metric *vec.Counting
	opts   Options
	// tracer, when non-nil, receives per-phase spans and slow-query records
	// for every query this processor evaluates. Instrumented loops hoist one
	// enabled test per page, so a nil tracer costs a predictable branch —
	// see the overhead gate in internal/obs. Tracing is observation-only:
	// answers and the DistCalcs/Avoided/AvoidTries counters are identical
	// with and without a tracer (pinned by the traced differential test).
	tracer *obs.Tracer
	// rows is the blocked kernel matching the metric, used by the SoA and
	// f32 layouts. Built once; the row loops report their calc/abandon
	// totals through the same counting metric as the scalar path.
	rows vec.BlockKernel
}

// New creates a processor over eng using metric m. The metric is wrapped in
// a counter (reused if m already is one), which is how distance
// calculations are charged.
func New(eng engine.Engine, m vec.Metric, opts Options) (*Processor, error) {
	if eng == nil {
		return nil, fmt.Errorf("msq: nil engine")
	}
	if m == nil {
		return nil, fmt.Errorf("msq: nil metric")
	}
	if opts.Concurrency < 0 {
		return nil, fmt.Errorf("msq: concurrency must be >= 0, got %d", opts.Concurrency)
	}
	counting, ok := m.(*vec.Counting)
	if !ok {
		counting = vec.NewCounting(m)
	}
	rows := vec.NewBlockKernel(counting.Kernel())
	if opts.Layout == LayoutF32 && !rows.SupportsF32() {
		return nil, fmt.Errorf("msq: metric %T has no float32 row kernel; use layout soa", counting.Kernel())
	}
	return &Processor{eng: eng, metric: counting, opts: opts, rows: rows}, nil
}

// Engine returns the underlying engine.
func (p *Processor) Engine() engine.Engine { return p.eng }

// Metric returns the counting metric used for all distance calculations.
func (p *Processor) Metric() *vec.Counting { return p.metric }

// Options returns the processor options.
func (p *Processor) Options() Options { return p.opts }

// Concurrency returns the effective pipeline width (at least 1).
func (p *Processor) Concurrency() int {
	if p.opts.Concurrency > 1 {
		return p.opts.Concurrency
	}
	return 1
}

// WithConcurrency returns a processor sharing this processor's engine and
// counting metric but running its multi-query pipeline at the given width.
// It lets a serving layer widen (or pin) the pipeline without rebuilding
// the engine. Widths below 2 select the sequential path.
func (p *Processor) WithConcurrency(n int) *Processor {
	if n < 0 {
		n = 0
	}
	opts := p.opts
	opts.Concurrency = n
	return &Processor{eng: p.eng, metric: p.metric, opts: opts, tracer: p.tracer, rows: p.rows}
}

// Tracer returns the tracer this processor reports to, or nil.
func (p *Processor) Tracer() *obs.Tracer { return p.tracer }

// WithTracer returns a processor sharing this processor's engine and
// counting metric but reporting phase spans and slow queries to tr (nil
// disables tracing). As a side effect it installs tr on the shared engine's
// pager, so page_fetch spans from the same engine — including those issued
// through other processors over it — are attributed to tr.
func (p *Processor) WithTracer(tr *obs.Tracer) *Processor {
	p.eng.Pager().SetTracer(tr)
	return &Processor{eng: p.eng, metric: p.metric, opts: p.opts, tracer: tr, rows: p.rows}
}
