package msq

import (
	"fmt"

	"metricdb/internal/engine"
	"metricdb/internal/obs"
	"metricdb/internal/query"
	"metricdb/internal/vec"
)

// AvoidanceMode selects which triangle-inequality lemmas the multi-query
// processor applies to avoid distance calculations.
type AvoidanceMode int

// Avoidance modes. The paper always uses both lemmas; the single-lemma
// modes exist for the ablation experiments.
const (
	// AvoidBoth applies Lemma 1 and Lemma 2 (the paper's method).
	AvoidBoth AvoidanceMode = iota
	// AvoidOff disables avoidance entirely.
	AvoidOff
	// AvoidLemma1 only skips objects far from a known query object
	// (dist(O,Qj) large, Qi close to Qj).
	AvoidLemma1
	// AvoidLemma2 only skips objects close to a known query object that
	// is far from Qi.
	AvoidLemma2
)

// String names the mode.
func (m AvoidanceMode) String() string {
	switch m {
	case AvoidBoth:
		return "both"
	case AvoidOff:
		return "off"
	case AvoidLemma1:
		return "lemma1"
	case AvoidLemma2:
		return "lemma2"
	default:
		return fmt.Sprintf("avoidance(%d)", int(m))
	}
}

// Options tunes the processor.
type Options struct {
	// Avoidance selects the triangle-inequality mode (default AvoidBoth).
	Avoidance AvoidanceMode
	// Concurrency is the intra-server pipeline width: the number of worker
	// goroutines that evaluate a data page's items against the active
	// queries, plus a prefetcher that overlaps page I/O with evaluation.
	// 0 and 1 select the sequential path (today's behavior). Any width
	// produces bit-identical answers and an identical disk read sequence;
	// see internal/msq/pipeline.go for the determinism argument.
	Concurrency int
}

// Query is one element of a multiple similarity query: a caller-chosen
// identity (used to associate buffered partial answers across incremental
// calls), the query object, and the query type.
type Query struct {
	ID   uint64
	Vec  vec.Vector
	Type query.Type
}

// Validate checks the query specification.
func (q Query) Validate() error {
	if len(q.Vec) == 0 {
		return fmt.Errorf("msq: query %d has an empty vector", q.ID)
	}
	if err := q.Type.Validate(); err != nil {
		return fmt.Errorf("msq: query %d: %w", q.ID, err)
	}
	return nil
}

// Processor evaluates similarity queries against one engine. It is the
// DB::similarity_query / DB::multiple_similarity_query implementation of
// the paper, parameterized by the physical organization.
type Processor struct {
	eng    engine.Engine
	metric *vec.Counting
	opts   Options
	// tracer, when non-nil, receives per-phase spans and slow-query records
	// for every query this processor evaluates. Instrumented loops hoist one
	// enabled test per page, so a nil tracer costs a predictable branch —
	// see the overhead gate in internal/obs. Tracing is observation-only:
	// answers and the DistCalcs/Avoided/AvoidTries counters are identical
	// with and without a tracer (pinned by the traced differential test).
	tracer *obs.Tracer
}

// New creates a processor over eng using metric m. The metric is wrapped in
// a counter (reused if m already is one), which is how distance
// calculations are charged.
func New(eng engine.Engine, m vec.Metric, opts Options) (*Processor, error) {
	if eng == nil {
		return nil, fmt.Errorf("msq: nil engine")
	}
	if m == nil {
		return nil, fmt.Errorf("msq: nil metric")
	}
	if opts.Concurrency < 0 {
		return nil, fmt.Errorf("msq: concurrency must be >= 0, got %d", opts.Concurrency)
	}
	counting, ok := m.(*vec.Counting)
	if !ok {
		counting = vec.NewCounting(m)
	}
	return &Processor{eng: eng, metric: counting, opts: opts}, nil
}

// Engine returns the underlying engine.
func (p *Processor) Engine() engine.Engine { return p.eng }

// Metric returns the counting metric used for all distance calculations.
func (p *Processor) Metric() *vec.Counting { return p.metric }

// Options returns the processor options.
func (p *Processor) Options() Options { return p.opts }

// Concurrency returns the effective pipeline width (at least 1).
func (p *Processor) Concurrency() int {
	if p.opts.Concurrency > 1 {
		return p.opts.Concurrency
	}
	return 1
}

// WithConcurrency returns a processor sharing this processor's engine and
// counting metric but running its multi-query pipeline at the given width.
// It lets a serving layer widen (or pin) the pipeline without rebuilding
// the engine. Widths below 2 select the sequential path.
func (p *Processor) WithConcurrency(n int) *Processor {
	if n < 0 {
		n = 0
	}
	opts := p.opts
	opts.Concurrency = n
	return &Processor{eng: p.eng, metric: p.metric, opts: opts, tracer: p.tracer}
}

// Tracer returns the tracer this processor reports to, or nil.
func (p *Processor) Tracer() *obs.Tracer { return p.tracer }

// WithTracer returns a processor sharing this processor's engine and
// counting metric but reporting phase spans and slow queries to tr (nil
// disables tracing). As a side effect it installs tr on the shared engine's
// pager, so page_fetch spans from the same engine — including those issued
// through other processors over it — are attributed to tr.
func (p *Processor) WithTracer(tr *obs.Tracer) *Processor {
	p.eng.Pager().SetTracer(tr)
	return &Processor{eng: p.eng, metric: p.metric, opts: p.opts, tracer: tr}
}
