package msq

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"metricdb/internal/engine"
	"metricdb/internal/obs"
	"metricdb/internal/query"
	"metricdb/internal/store"
	"metricdb/internal/vec"
)

// queryState is the per-query bookkeeping that persists across incremental
// multi-query calls: the (partial) answer list and the set of pages whose
// items have already been tested for this query. Together they are the
// "internal buffer" of Figure 4 (restore_from_buffer / buffer_answers).
type queryState struct {
	q       Query
	answers *query.AnswerList
	// pq is the engine's prepared handle for this query, created once when
	// the query first enters the session. Pivot-based engines pay their
	// query-to-pivot distances here, so every later page probe (plans,
	// relevance checks, bootstrap bounds) across every incremental call
	// reuses them for free.
	pq engine.PreparedQuery
	// mu guards answers while the concurrent pipeline's sharded merge
	// workers feed per-page results into the list (one shard — and hence
	// one worker — per query, but the lock keeps the ownership explicit
	// and race-detector-checkable). The sequential path never contends.
	mu        sync.Mutex
	processed map[store.PageID]struct{}
	done      bool
	// bound is an a-priori upper bound on the final query distance,
	// derived from MAXDIST over a data page holding enough items (see
	// Session.bootstrap). It lets a k-NN query participate in page
	// relevance filtering and distance avoidance before any of its
	// object distances have been calculated. +Inf when unknown.
	bound float64
	// q32 caches the query vector rounded to float32 for the f32 row
	// kernels (ToF32 allocates; the rounding must match the block's
	// DeriveF32 for the documented error bound, and it does — both are
	// plain float32 conversions).
	q32 []float32
	// qfilter caches the quantized lower-bound filter for this query on
	// grid filterGrid, built on the first quant-layout page and rebuilt
	// if a page arrives with a different grid. filterSet distinguishes
	// "not built yet" from "built nil" (metric without code-level
	// bounds), so unsupported metrics are probed once, not per page.
	qfilter    *vec.QuantFilter
	filterGrid *vec.QuantGrid
	filterSet  bool
}

// f32 returns the query vector rounded to float32, cached after first use.
func (st *queryState) f32() []float32 {
	if st.q32 == nil {
		st.q32 = vec.ToF32(st.q.Vec)
	}
	return st.q32
}

// filter returns the query's quantized lower-bound filter for grid g (nil
// when the metric supports no code-level bound; a nil filter rejects
// nothing). Callers must hold the session's call lock or the pipeline's
// page barrier — the cache is not otherwise synchronized.
func (st *queryState) filter(m vec.Metric, g *vec.QuantGrid) *vec.QuantFilter {
	if !st.filterSet || st.filterGrid != g {
		st.qfilter = vec.NewQuantFilter(m, g, st.q.Vec)
		st.filterGrid = g
		st.filterSet = true
	}
	return st.qfilter
}

// queryDist is the effective pruning distance: the adaptive answer-list
// distance, capped by the a-priori bound. Both are upper bounds on the
// final query distance, so the minimum is a safe pruning threshold.
func (st *queryState) queryDist() float64 {
	if qd := st.answers.QueryDist(); qd < st.bound {
		return qd
	}
	return st.bound
}

// Session holds buffered (partial) answers between incremental multi-query
// calls. A session is bound to one processor. It is safe for concurrent
// use: calls are serialized by an internal mutex, because the paper's
// incremental semantics (each call builds on the buffered answers of the
// previous one) are inherently ordered. Parallelism happens *inside* a
// call when the processor's Concurrency is above 1.
type Session struct {
	proc *Processor
	// mu serializes top-level calls on the session. The pipeline's worker
	// goroutines never take it; they synchronize through per-query state
	// locks and the page barrier (see pipeline.go).
	mu     sync.Mutex
	states map[uint64]*queryState
	// pairDist caches inter-query distances ("QObjDists") so that each
	// pair is calculated at most once per session, keeping the matrix
	// overhead at m(m-1)/2 for a block of m queries even under
	// incremental evaluation.
	pairDist map[pairKey]float64
	// explain, when non-nil, switches the page loops to their explain
	// twins for the duration of one ExplainAllContext call (set and
	// cleared under mu; the pipeline's workers only read it).
	explain *explainState
}

// pairKey identifies an unordered query pair.
type pairKey struct{ lo, hi uint64 }

// NewSession starts an empty multi-query session.
func (p *Processor) NewSession() *Session {
	return &Session{
		proc:     p,
		states:   make(map[uint64]*queryState),
		pairDist: make(map[pairKey]float64),
	}
}

// state returns the buffered state for q, creating it on first sight and
// rejecting ID reuse with a different query object or type.
func (s *Session) state(q Query) (*queryState, error) {
	if st, ok := s.states[q.ID]; ok {
		if !st.q.Vec.Equal(q.Vec) || st.q.Type != q.Type {
			return nil, fmt.Errorf("msq: query ID %d reused with a different object or type", q.ID)
		}
		return st, nil
	}
	st := &queryState{
		q:         q,
		answers:   query.NewAnswerList(q.Type),
		pq:        s.proc.eng.Prepare(q.Vec),
		processed: make(map[store.PageID]struct{}),
		bound:     math.Inf(1),
	}
	s.states[q.ID] = st
	return st, nil
}

// MultiQuery evaluates a multiple similarity query per Definition 4 and the
// algorithm of Figure 4. On return, the answers for queries[0] are complete
// (A1 = similarity_query(Q1, T1)); the answers for the remaining queries
// are correct subsets of their full results (A_i ⊆ similarity_query(Q_i,
// T_i)), collected opportunistically from the pages loaded for Q1 and
// buffered in the session for later calls.
//
// The returned answer lists are aligned with queries and owned by the
// session: they remain live and may grow in subsequent calls.
func (s *Session) MultiQuery(queries []Query) ([]*query.AnswerList, Stats, error) {
	return s.MultiQueryContext(context.Background(), queries)
}

// MultiQueryContext is MultiQuery with cancellation: the page loop checks
// ctx once per page and aborts with ctx's error when it is canceled or past
// its deadline. Buffered partial answers collected before the abort stay in
// the session and are reused by later calls.
func (s *Session) MultiQueryContext(ctx context.Context, queries []Query) ([]*query.AnswerList, Stats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	tr := s.proc.tracer
	traced := tr.Enabled()
	var begin time.Time
	if traced {
		begin = time.Now()
	}
	// Accounting starts before prepare so the pivot distances paid by
	// Engine.Prepare for queries entering the session are charged to this
	// call's PivotDistCalcs.
	acct := s.beginAccounting()
	states, results, err := s.prepare(queries)
	if err != nil {
		return nil, Stats{}, err
	}
	if states[0].done {
		// The first query was completed by an earlier call; its answers
		// come straight from the buffer.
		if traced {
			tr.RecordQuery("multi", len(queries), time.Since(begin), 0, 0, 0)
		}
		var st Stats
		acct.finish(&st)
		return results, st, nil
	}

	var stats Stats

	// Inter-query distance matrix for the avoidance lemmas. Computing it
	// costs m(m-1)/2 distance calculations — the initialization overhead
	// that is quadratic in m (§5.2, §6.4).
	sp := tr.Start(obs.PhaseMatrix)
	matrix := s.queryDistMatrix(queries, &stats)
	sp.End()
	pos := identityPositions(len(states))

	err = s.run(ctx, states, matrix, pos, &stats)
	stats.Queries = 1
	acct.finish(&stats)
	if traced {
		tr.RecordQuery("multi", len(queries), time.Since(begin), stats.PagesRead, stats.DistCalcs, stats.Avoided)
	}
	if err != nil {
		return nil, stats, err
	}
	return results, stats, nil
}

// prepare validates the batch and restores (or creates) the per-query
// buffered states.
func (s *Session) prepare(queries []Query) ([]*queryState, []*query.AnswerList, error) {
	if len(queries) == 0 {
		return nil, nil, fmt.Errorf("msq: empty multiple similarity query")
	}
	seen := make(map[uint64]bool, len(queries))
	states := make([]*queryState, len(queries))
	for i, q := range queries {
		if err := q.Validate(); err != nil {
			return nil, nil, err
		}
		if seen[q.ID] {
			return nil, nil, fmt.Errorf("msq: query ID %d appears twice in one call", q.ID)
		}
		seen[q.ID] = true
		st, err := s.state(q) // restore_from_buffer
		if err != nil {
			return nil, nil, err
		}
		states[i] = st
	}
	results := make([]*query.AnswerList, len(queries))
	for i, st := range states {
		results[i] = st.answers
	}
	return states, results, nil
}

// accounting snapshots the I/O and distance counters so a call can report
// its own deltas.
type accounting struct {
	s             *Session
	ioBefore      store.IOStats
	distBefore    int64
	abandonBefore int64
	pivotBefore   int64
}

func (s *Session) beginAccounting() accounting {
	a := accounting{
		s:             s,
		ioBefore:      ioSnapshot(s.proc.eng.Pager()),
		distBefore:    s.proc.metric.Count(),
		abandonBefore: s.proc.metric.Abandoned(),
	}
	if pc, ok := s.proc.eng.(engine.PivotCoster); ok {
		a.pivotBefore = pc.PivotDistCalcs()
	}
	return a
}

func (a accounting) finish(stats *Stats) {
	stats.PagesRead = a.s.proc.eng.Pager().Disk().Stats().Reads - a.ioBefore.Reads
	stats.DistCalcs = a.s.proc.metric.Count() - a.distBefore - stats.MatrixDistCalcs
	stats.PartialAbandoned = a.s.proc.metric.Abandoned() - a.abandonBefore
	if pc, ok := a.s.proc.eng.(engine.PivotCoster); ok {
		stats.PivotDistCalcs = pc.PivotDistCalcs() - a.pivotBefore
	}
}

// identityPositions returns [0, 1, ..., n-1].
func identityPositions(n int) []int {
	pos := make([]int, n)
	for i := range pos {
		pos[i] = i
	}
	return pos
}

// run executes one multiple-similarity-query pass: it completes states[0]
// and opportunistically collects partial answers for the rest. matrix is
// indexed by the global positions in pos (pos[i] is the matrix row of
// states[i]), so MultiQueryAll can share one matrix across all its passes.
func (s *Session) run(ctx context.Context, states []*queryState, matrix [][]float64, pos []int, stats *Stats) error {
	first := states[0]
	tr := s.proc.tracer
	traced := tr.Enabled()

	// Bootstrap: a k-NN query that has no answers yet cannot exclude any
	// page (its query distance is infinite), so sharing Q1's pages with
	// it would process *every* page for it. Definition 4 only requires
	// partial answers for the non-first queries, so before the page loop
	// each unbounded k-NN query receives an a-priori bound: MAXDIST to
	// any single data page holding at least k items upper-bounds its
	// k-NN distance, at zero I/O and zero object-distance cost. On
	// engines without geometric knowledge (the scan) the bound stays
	// +Inf, which is fine — a scan processes every page for every query
	// by design.
	s.bootstrap(states)
	if err := s.seedFirstPages(states, pos, stats); err != nil {
		return err
	}

	// determine_relevant_data_pages: the plan covers (at least) every
	// page relevant for Q1, in optimal order. Buffered partial answers
	// and the a-priori bound give Q1 a head start on its query distance.
	ex := s.explain
	var planStart time.Time
	if ex != nil {
		planStart = time.Now()
	}
	sp := tr.Start(obs.PhasePlan)
	plan := first.pq.Plan(first.queryDist())
	sp.End()
	if ex != nil {
		ex.observe(obs.PhasePlan, time.Since(planStart))
	}

	if width := s.proc.Concurrency(); width > 1 {
		if err := s.runPipeline(ctx, plan, states, matrix, pos, stats, width); err != nil {
			return err
		}
		first.done = true
		return nil
	}

	// active caches, per page, which queries still need the page; sc is
	// the page loop's scratch (avoidance lists, pruning-distance mirrors,
	// row-kernel buffers), pre-sized so no observation mode of the loop
	// allocates in steady state.
	active := make([]*queryState, 0, len(states))
	activePos := make([]int, 0, len(states))
	sc := newSeqScratch(len(states))

	for _, ref := range plan {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("msq: multiple query: %w", err)
		}
		if ref.MinDist > first.queryDist() {
			break // prune_pages for Q1; later refs are even farther
		}
		if _, ok := first.processed[ref.ID]; ok {
			continue // already examined for Q1 in an earlier call
		}

		active, activePos = s.decideActive(ref.ID, states, pos, active, activePos)

		var waitStart time.Time
		if traced || ex != nil {
			waitStart = time.Now()
		}
		page, err := s.proc.eng.ReadPage(ref.ID)
		if traced {
			tr.ObserveSince(obs.PhasePageWait, waitStart)
		}
		if ex != nil {
			ex.observe(obs.PhasePageWait, time.Since(waitStart))
		}
		if err != nil {
			return fmt.Errorf("msq: multiple query: %w", err)
		}
		stats.PageVisits += int64(len(active))
		if ex != nil {
			for _, p := range activePos {
				ex.prof[p].pagesVisited.Add(1)
			}
		}

		s.processPage(page, active, activePos, matrix, stats, sc)

		for _, st := range active {
			st.processed[ref.ID] = struct{}{}
		}
	}

	first.done = true // A1 is now complete; buffer_answers is implicit.
	return nil
}

// decideActive computes which queries still need the page: not finished, not
// already processed for the page, and (for non-first queries) not excludable
// by the engine's lower bound against the query's current pruning distance.
// Both the sequential loop and the concurrent pipeline call it at the same
// point — after all earlier pages are fully merged — so the decisions, and
// hence page visits, are identical regardless of the pipeline width.
func (s *Session) decideActive(pid store.PageID, states []*queryState, pos []int, active []*queryState, activePos []int) ([]*queryState, []int) {
	active = active[:0]
	activePos = activePos[:0]
	for i, st := range states {
		if st.done {
			continue
		}
		if _, ok := st.processed[pid]; ok {
			continue
		}
		if i > 0 && st.pq.MinDist(pid) > st.queryDist() {
			continue
		}
		active = append(active, st)
		activePos = append(activePos, pos[i])
	}
	return active, activePos
}

// bootstrap computes, for every query whose effective query distance is
// still unbounded, the a-priori bound: the minimum over the data pages
// holding at least Cardinality items of MAXDIST(query, page MBR). Every
// item on such a page is within MAXDIST, so the final k-NN distance cannot
// exceed it. The computation uses only MBR geometry — no I/O and no object
// distance calculations.
func (s *Session) bootstrap(states []*queryState) {
	eng := s.proc.eng
	nPages := eng.NumPages()
	for _, st := range states {
		if st.done || !st.q.Type.Bounded() || !math.IsInf(st.queryDist(), 1) {
			continue
		}
		k := st.q.Type.Cardinality
		best := math.Inf(1)
		for pid := 0; pid < nPages; pid++ {
			p := store.PageID(pid)
			if eng.PageLen(p) < k {
				continue
			}
			if d := st.pq.MaxDist(p); d < best {
				best = d
			}
		}
		st.bound = best
	}
}

// seedFirstPages tightens the bound of each new bounded query further by
// processing the single unprocessed page nearest to it (by lower bound):
// that page's true k-th distance is typically very close to the final k-NN
// distance, so subsequent page sharing for the query admits few superfluous
// pages. Only queries whose answer list is still unfilled are seeded, and
// only on engines with geometric page knowledge (an uninformative engine
// such as the scan would always seed page 0 for everyone).
func (s *Session) seedFirstPages(states []*queryState, pos []int, stats *Stats) error {
	eng := s.proc.eng
	ex := s.explain
	kernel := s.proc.metric.Kernel()
	nPages := eng.NumPages()
	for idx, st := range states {
		if idx == 0 || st.done || st.answers.Full() || !st.q.Type.Bounded() {
			continue
		}
		best := store.InvalidPage
		bestD := math.Inf(1)
		informative := false
		for pid := 0; pid < nPages; pid++ {
			p := store.PageID(pid)
			if _, ok := st.processed[p]; ok {
				continue
			}
			d := st.pq.MinDist(p)
			if d > 0 {
				informative = true
			}
			if d < bestD {
				best, bestD = p, d
			}
		}
		if !informative || best == store.InvalidPage {
			continue
		}
		page, err := eng.ReadPage(best)
		if err != nil {
			return fmt.Errorf("msq: seeding query %d: %w", st.q.ID, err)
		}
		stats.PageVisits++
		var prof *explainCounters
		if ex != nil {
			prof = &ex.prof[pos[idx]]
			prof.pagesVisited.Add(1)
		}
		var calcs, abandoned int64
		for i := range page.Items {
			// The live bound (a-priori MAXDIST bound, tightening as the
			// list fills) lets later items on the seed page abandon early;
			// an abandoned item could not have entered the list. Calls go
			// through the raw kernel and settle in one AddCalls per seed
			// page, like the page loop.
			d, within := kernel.DistanceWithin(st.q.Vec, page.Items[i].Vec, st.queryDist())
			calcs++
			if prof != nil {
				prof.distCalcs.Add(1)
				if !within {
					prof.abandoned.Add(1)
				}
			}
			if within {
				st.answers.Consider(page.Items[i].ID, d)
			} else {
				abandoned++
			}
		}
		s.proc.metric.AddCalls(calcs, abandoned)
		st.processed[best] = struct{}{}
	}
	return nil
}

// queryDistMatrix computes dist(Q_i, Q_j) for all pairs. Row i is indexed
// by query position j. With avoidance disabled, or for a single query, no
// matrix is needed.
func (s *Session) queryDistMatrix(queries []Query, stats *Stats) [][]float64 {
	m := len(queries)
	if m < 2 || s.proc.opts.Avoidance == AvoidOff {
		return nil
	}
	matrix := make([][]float64, m)
	for i := range matrix {
		matrix[i] = make([]float64, m)
	}
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			d := s.pairDistance(queries[i], queries[j], stats)
			matrix[i][j] = d
			matrix[j][i] = d
		}
	}
	return matrix
}

// pairDistance returns dist(Q_i, Q_j), computing and caching it on first
// use and charging the calculation to the matrix overhead.
func (s *Session) pairDistance(qi, qj Query, stats *Stats) float64 {
	k := pairKey{lo: qi.ID, hi: qj.ID}
	if k.lo > k.hi {
		k.lo, k.hi = k.hi, k.lo
	}
	if d, ok := s.pairDist[k]; ok {
		return d
	}
	d := s.proc.metric.Distance(qi.Vec, qj.Vec)
	s.pairDist[k] = d
	stats.MatrixDistCalcs++
	return d
}

// knownDist records a distance already calculated from the current database
// object to the query at position idx ("AvoidingDists" in Figure 4). When
// the calculation was abandoned early by the bounded kernel, d is only a
// lower bound on the true distance: sound for Lemma 1 (which needs
// dist(O,Qj) to be large), and incapable of firing Lemma 2 — not by an
// exactness flag (a data-dependent branch that mispredicts badly in
// avoidable's probe loop when abandoned and exact entries interleave) but
// by the abandonLimit invariant: an abandoned d strictly exceeds
// dist(Q_j, Q_i) + QueryDist(Q_i) for every query i that can still probe
// the entry with a finite pruning distance, and Lemma 2 would need d
// *below* dist(Q_j, Q_i) - QueryDist(Q_i). A pruning distance becomes
// finite only at its own query's turn — after that query's probes — and
// that transition recomputes the raises, so the invariant covers every
// probe. idx is an int32 so the entry packs into 16 bytes; avoidable scans
// these linearly, so density matters.
type knownDist struct {
	d   float64 // exact distance, or the abandoned partial lower bound
	idx int32
}

// seqScratch bundles the sequential page loop's reusable buffers, shared
// by the plain, traced and explain twins so switching observation modes
// never changes the allocation profile. Every field is sized for the full
// batch and sliced down to the page's active set; contents are clobbered
// on each page.
type seqScratch struct {
	known   []knownDist
	qds     []float64
	raise   []float64
	qvecs   []vec.Vector
	q32     [][]float32
	rowD    []float64
	rowW    []bool
	filters []*vec.QuantFilter
}

func newSeqScratch(n int) *seqScratch {
	return &seqScratch{
		known:   make([]knownDist, 0, n),
		qds:     make([]float64, n),
		raise:   make([]float64, n),
		qvecs:   make([]vec.Vector, n),
		q32:     make([][]float32, n),
		rowD:    make([]float64, n),
		rowW:    make([]bool, n),
		filters: make([]*vec.QuantFilter, n),
	}
}

// rowPath reports whether this page runs through the blocked row kernels
// under the configured layout, and whether over the float32 sibling. Rows
// require a columnar block and no avoidance interleaving: with avoidance
// off, a query's pruning distance within one item can only have been
// tightened by earlier items (each query's mirror is updated solely by its
// own Consider accepts), so passing the live pruning distances as the row
// limits reproduces the per-pair loop's limits — and with them its
// distances, within flags, abandon points and Consider sequence — exactly.
// Under avoidance the per-pair loop couples the queries of one item
// through the known list, which has no row equivalent; those pages keep
// the per-pair path, which reads the same block-backed float64s anyway.
// Batches narrower than one lane group (m < 4) also keep the per-pair
// path: the grouped lanes of the row kernels never engage there, so the
// row loop would only add per-item bookkeeping on top of the same scalar
// kernel calls.
func (s *Session) rowPath(page *store.Page, avoiding bool, m int) (rows, f32 bool) {
	b := page.Cols
	if b == nil || avoiding || b.N != len(page.Items) || m < 4 {
		return false, false
	}
	switch s.proc.opts.Layout {
	case LayoutSoA:
		return true, false
	case LayoutF32:
		if b.F32 != nil && s.proc.rows.SupportsF32() {
			return true, true
		}
		return true, false // no f32 sibling on this page: exact rows
	}
	return false, false
}

// quantFilters fills dst with each active query's code-level filter for
// the page's grid, or returns nil when the layout or the page does not
// support quantized screening. Entries may be nil (metric without a
// code-level bound); a nil filter rejects nothing.
func (s *Session) quantFilters(page *store.Page, active []*queryState, dst []*vec.QuantFilter) []*vec.QuantFilter {
	if s.proc.opts.Layout != LayoutQuant {
		return nil
	}
	b := page.Cols
	if b == nil || b.Codes == nil || b.Grid == nil {
		return nil
	}
	dst = dst[:len(active)]
	for i, st := range active {
		dst[i] = st.filter(s.proc.metric, b.Grid)
	}
	return dst
}

// processPageRows is the blocked (SoA) page pass: one row-kernel call per
// item evaluates the whole active set against the item's block row, so the
// row — just loaded into cache — is reused m times and the kernel dispatch
// is devirtualized once per page instead of once per pair. Only reached
// when rowPath holds, under which the results are bit-identical to the
// per-pair loop (see rowPath); with f32 the distances instead carry the
// block's documented input-rounding error and the caller has opted into
// that via LayoutF32. Observation modes share this body: ex/tr attribution
// is per item (not per pair), which costs one predictable branch per row.
func (s *Session) processPageRows(page *store.Page, active []*queryState, activeIdx []int, sc *seqScratch, f32 bool, ex *explainState, tr *obs.Tracer) {
	observing := ex != nil || tr.Enabled()
	var pageStart time.Time
	if observing {
		pageStart = time.Now()
	}
	b := page.Cols
	rows := s.proc.rows
	qds := sc.qds[:len(active)]
	dOut := sc.rowD[:len(active)]
	wOut := sc.rowW[:len(active)]
	for i, st := range active {
		qds[i] = st.queryDist()
	}
	var q64 []vec.Vector
	var q32 [][]float32
	if f32 {
		q32 = sc.q32[:len(active)]
		for i, st := range active {
			q32[i] = st.f32()
		}
	} else {
		q64 = sc.qvecs[:len(active)]
		for i, st := range active {
			q64[i] = st.q.Vec
		}
	}
	var calcs, abandoned int64
	for it := 0; it < b.N; it++ {
		var ab int
		if f32 {
			ab = rows.RowWithinF32(q32, b, it, qds, dOut, wOut)
		} else {
			ab = rows.RowWithin(q64, b, it, qds, dOut, wOut)
		}
		calcs += int64(len(active))
		abandoned += int64(ab)
		if ex != nil {
			for a := range active {
				prof := &ex.prof[activeIdx[a]]
				prof.distCalcs.Add(1)
				if !wOut[a] {
					prof.abandoned.Add(1)
				}
			}
		}
		if ab == len(active) {
			continue // no lane within: nothing to Consider
		}
		id := page.Items[it].ID
		for a, st := range active {
			if wOut[a] {
				if st.answers.Consider(id, dOut[a]) {
					qds[a] = st.queryDist()
				}
			}
		}
	}
	s.proc.metric.AddCalls(calcs, abandoned)
	if observing {
		kernelNs := time.Since(pageStart)
		if ex != nil {
			ex.observe(obs.PhaseKernel, kernelNs)
		}
		if tr.Enabled() {
			tr.Observe(obs.PhaseKernel, kernelNs)
		}
	}
}

// processPage tests every item of page against every active query, using
// the triangle inequality over already-known distances to avoid
// calculations where possible. Unavoidable calculations run through the
// bounded distance kernel, which abandons mid-vector as soon as the partial
// result proves the exact distance irrelevant. The abandonment limit is not
// the query's own pruning distance but the abandonLimit raise of it, so an
// abandoned calculation provably (a) could never have produced an answer
// (Consider would reject it) and (b) fires Lemma 1 — and withholds Lemma 2
// — for every later query on this item exactly where the exact distance
// would, leaving DistCalcs and Avoided untouched relative to full-distance
// evaluation. The partial result is appended to known like any other
// distance, so later probes see the same entry sequence either way. sc is
// caller-owned scratch sized for the batch; its contents are clobbered.
//
// Distance calculations bypass the Counting wrapper: the loop calls the raw
// kernel and settles the calc/abandon counts in one AddCalls batch per
// page, trading two atomic updates per evaluation for two per page.
//
// Layouts: pages with a columnar block take the blocked row path when
// rowPath holds (bit-identical for LayoutSoA; see rowPath). LayoutQuant
// screens each pair through the quantized lower-bound filter before the
// kernel: a rejected pair provably satisfies dist > qd, so it could not
// have been an answer; it is not appended to known (Lemma 2 over a lower
// bound is unsound) and is counted in QuantFiltered instead of DistCalcs.
// Answers and page reads are unchanged; only the CPU counters shift.
//
// When a tracer is enabled the page is evaluated by processPageTraced — a
// verbatim copy of this loop plus per-pair clock reads — so the untraced
// hot path carries no per-pair branches at all. The two loops must stay in
// lockstep; the traced differential test pins that their answers and
// avoidance counters are identical.
func (s *Session) processPage(page *store.Page, active []*queryState, activeIdx []int, matrix [][]float64, stats *Stats, sc *seqScratch) {
	avoiding := matrix != nil && s.proc.opts.Avoidance != AvoidOff
	if useRows, f32 := s.rowPath(page, avoiding, len(active)); useRows {
		s.processPageRows(page, active, activeIdx, sc, f32, s.explain, s.proc.tracer)
		return
	}
	if ex := s.explain; ex != nil {
		s.processPageExplain(ex, page, active, activeIdx, matrix, stats, sc)
		return
	}
	if tr := s.proc.tracer; tr.Enabled() {
		s.processPageTraced(tr, page, active, activeIdx, matrix, stats, sc)
		return
	}
	kernel := s.proc.metric.Kernel()
	filters := s.quantFilters(page, active, sc.filters)
	var calcs, abandoned int64
	startFiltered := stats.QuantFiltered
	// qds mirrors each active query's pruning distance exactly: a pruning
	// distance changes only when the query's own Consider accepts an item
	// (st.bound is fixed during the page loop), and every accept refreshes
	// the mirror below — so the per-pair qd is a cached read, not a call.
	known := sc.known
	qds := sc.qds[:len(active)]
	for i, st := range active {
		qds[i] = st.queryDist()
	}
	// raise[a] caches the Lemma-1 horizon bound of abandonLimit, computed
	// from the page-start qds. Pruning distances only shrink during the
	// page, which leaves the cached raise too high — still at or above
	// every live horizon (the identity requirement), merely abandoning
	// less — so shrinks do not invalidate it. The one event that would
	// make it too low is a pruning distance turning finite (a k-NN list
	// filling up mid-page): that query's horizon springs into existence,
	// so every cached raise is lifted to cover the new horizon then — an
	// O(m) overapproximation (the suffix raise of a later position need
	// not include the new query, but a higher raise stays valid). Each
	// query transitions at most once per run.
	var raise []float64
	if avoiding {
		raise = lemma1Raises(activeIdx, matrix, qds, sc.raise)
	}
	for it := range page.Items {
		item := &page.Items[it]
		var codes []uint8
		if filters != nil {
			codes = page.Cols.ItemCodes(it)
		}
		known = known[:0]
		for a, st := range active {
			pos := activeIdx[a]
			qd := qds[a]
			limit := qd
			if avoiding {
				if s.avoidable(qd, pos, known, matrix, &stats.AvoidTries) {
					stats.Avoided++
					continue
				}
				limit = abandonLimit(qd, raise[a], len(known))
			}
			if filters != nil {
				if f := filters[a]; f != nil && f.Exceeds(codes, qd) {
					stats.QuantFiltered++
					continue
				}
			}
			d, within := kernel.DistanceWithin(st.q.Vec, item.Vec, limit)
			calcs++
			if avoiding {
				known = append(known, knownDist{d: d, idx: int32(pos)})
			}
			if within {
				if st.answers.Consider(item.ID, d) {
					wasInf := math.IsInf(qd, 1)
					qds[a] = st.queryDist()
					if avoiding && wasInf && !math.IsInf(qds[a], 1) {
						row := matrix[pos]
						for j, p := range activeIdx {
							if t := row[p] + qds[a]; t > raise[j] {
								raise[j] = t
							}
						}
					}
				}
			} else {
				abandoned++
			}
		}
	}
	s.proc.metric.AddCalls(calcs, abandoned)
	s.proc.metric.AddFiltered(stats.QuantFiltered - startFiltered)
}

// processPageTraced is processPage with tracing enabled: the same loop,
// plus clock reads that split the page's evaluation time into the avoidance
// phase (triangle-inequality probes and abandonment-limit bookkeeping) and
// the kernel phase (everything else: bounded distance evaluations and
// answer-list updates). Timing is observation-only — every avoidance
// decision, kernel limit, and Consider call is byte-for-byte the decision
// the untraced loop makes, so answers and the DistCalcs/Avoided/AvoidTries
// counters cannot differ. Keep this body in lockstep with processPage.
func (s *Session) processPageTraced(tr *obs.Tracer, page *store.Page, active []*queryState, activeIdx []int, matrix [][]float64, stats *Stats, sc *seqScratch) {
	pageStart := time.Now()
	var avoidNs time.Duration
	avoiding := matrix != nil && s.proc.opts.Avoidance != AvoidOff
	kernel := s.proc.metric.Kernel()
	filters := s.quantFilters(page, active, sc.filters)
	var calcs, abandoned int64
	startFiltered := stats.QuantFiltered
	known := sc.known
	qds := sc.qds[:len(active)]
	for i, st := range active {
		qds[i] = st.queryDist()
	}
	var raise []float64
	if avoiding {
		raise = lemma1Raises(activeIdx, matrix, qds, sc.raise)
	}
	for it := range page.Items {
		item := &page.Items[it]
		var codes []uint8
		if filters != nil {
			codes = page.Cols.ItemCodes(it)
		}
		known = known[:0]
		for a, st := range active {
			pos := activeIdx[a]
			qd := qds[a]
			limit := qd
			if avoiding {
				t0 := time.Now()
				if s.avoidable(qd, pos, known, matrix, &stats.AvoidTries) {
					stats.Avoided++
					avoidNs += time.Since(t0)
					continue
				}
				limit = abandonLimit(qd, raise[a], len(known))
				avoidNs += time.Since(t0)
			}
			if filters != nil {
				if f := filters[a]; f != nil && f.Exceeds(codes, qd) {
					stats.QuantFiltered++
					continue
				}
			}
			d, within := kernel.DistanceWithin(st.q.Vec, item.Vec, limit)
			calcs++
			if avoiding {
				known = append(known, knownDist{d: d, idx: int32(pos)})
			}
			if within {
				if st.answers.Consider(item.ID, d) {
					wasInf := math.IsInf(qd, 1)
					qds[a] = st.queryDist()
					if avoiding && wasInf && !math.IsInf(qds[a], 1) {
						row := matrix[pos]
						for j, p := range activeIdx {
							if t := row[p] + qds[a]; t > raise[j] {
								raise[j] = t
							}
						}
					}
				}
			} else {
				abandoned++
			}
		}
	}
	s.proc.metric.AddCalls(calcs, abandoned)
	s.proc.metric.AddFiltered(stats.QuantFiltered - startFiltered)
	tr.Observe(obs.PhaseAvoid, avoidNs)
	if kernelDur := time.Since(pageStart) - avoidNs; kernelDur > 0 {
		tr.Observe(obs.PhaseKernel, kernelDur)
	} else {
		tr.Observe(obs.PhaseKernel, 0)
	}
}

// maxAvoidProbes caps how many known distances one avoidance decision
// consults. Unbounded probing is quadratic in the block size m and
// dominates wall-clock for m in the thousands, while the probability that
// a probe succeeds after many failures is low; the cap keeps the vast
// majority of avoided calculations at linear cost. (The paper's own
// quadratic-in-m degradation at s=16 stems mainly from the query-distance
// matrix, which is not affected by this cap.)
const maxAvoidProbes = 8

// avoidable implements Definition 5 via Lemmas 1 and 2: the calculation of
// dist(Q_i, O) is avoidable if some already-known dist(Q_j, O) proves
// dist(Q_i, O) > QueryDist(Q_i). Strict inequalities are used so that
// boundary answers (dist exactly equal to the query distance) are never
// lost.
//
//	Lemma 1: dist(O,Qj) - dist(Qi,Qj) > QueryDist(Qi)  =>  avoid
//	Lemma 2: dist(Qi,Qj) - dist(O,Qj) > QueryDist(Qi)  =>  avoid
func (s *Session) avoidable(qd float64, pos int, known []knownDist, matrix [][]float64, tries *int64) bool {
	row := matrix[pos]
	mode := s.proc.opts.Avoidance
	if len(known) > maxAvoidProbes {
		known = known[:maxAvoidProbes]
	}
	for _, k := range known {
		*tries++
		mij := row[k.idx]
		switch mode {
		case AvoidBoth:
			if k.d-mij > qd || mij-k.d > qd {
				return true
			}
		case AvoidLemma1:
			if k.d-mij > qd {
				return true
			}
		case AvoidLemma2:
			if mij-k.d > qd {
				return true
			}
		}
	}
	return false
}

// abandonLimit returns the early-abandonment limit for the distance between
// the current item and a query with pruning distance qd: qd, raised so that
// an abandoned calculation can never change a later avoidance decision for
// the same item. A known distance d(O, Q_a) influences query i via Lemma 1
// only when it exceeds the horizon dist(Q_a, Q_i) + QueryDist(Q_i), and via
// Lemma 2 only when it falls below dist(Q_a, Q_i) - QueryDist(Q_i);
// abandoning strictly above every probing query's Lemma-1 horizon therefore
// guarantees the partial lower bound fires Lemma 1 exactly where the exact
// distance would, and — since the Lemma-1 horizon is at or above the
// Lemma-2 one whenever QueryDist(Q_i) >= 0 — that Lemma 2 can never fire on
// the lower bound where the exact distance would not (neither can fire at
// all above the horizon). Any limit at or above the horizons preserves this — a
// larger limit merely abandons less — so raise is the cached per-page
// suffix maximum from lemma1Raises rather than an exact per-pair O(m)
// loop, which would itself dominate the per-pair bookkeeping. The raise is
// skipped when the known entry can never be probed (the list already holds
// maxAvoidProbes entries).
func abandonLimit(qd, raise float64, knownLen int) float64 {
	if knownLen >= maxAvoidProbes {
		return qd
	}
	if raise > qd {
		return raise
	}
	return qd
}

// lemma1Raises fills scratch with, per active position a, the maximum
// Lemma-1 horizon dist(Q_a, Q_i) + qds[i] over the *later* positions i > a
// — the only queries that can probe a known entry appended at position a,
// since the known list is per item and scanned in active order. Infinite
// pruning distances contribute no horizon (no lemma can fire against an
// infinite query distance); with no later finite-qd query the raise is
// -Inf and abandonLimit falls back to the query's own pruning distance.
func lemma1Raises(activeIdx []int, matrix [][]float64, qds []float64, scratch []float64) []float64 {
	raise := scratch[:len(activeIdx)]
	for a, pos := range activeIdx {
		row := matrix[pos]
		m := math.Inf(-1)
		for i := a + 1; i < len(activeIdx); i++ {
			if qd := qds[i]; !math.IsInf(qd, 1) {
				if t := row[activeIdx[i]] + qd; t > m {
					m = t
				}
			}
		}
		raise[a] = m
	}
	return raise
}

// MultiQueryAll evaluates the whole batch to completion by running the
// multiple similarity query for every not-yet-finished suffix — the
// evaluation the paper describes: "to determine the complete answers for
// the other query objects we have to call the method repeatedly for
// [Q2,...,Qm], [Q3,...,Qm], ..., [Qm]". The session's page bookkeeping
// guarantees no page is processed twice for the same query, and the
// query-distance matrix is computed once for the whole batch (calling
// MultiQuery on each suffix instead would rebuild an O(m²) matrix per
// suffix — cubic in m overall).
func (s *Session) MultiQueryAll(queries []Query) ([]*query.AnswerList, Stats, error) {
	return s.MultiQueryAllContext(context.Background(), queries)
}

// MultiQueryAllContext is MultiQueryAll with cancellation: every pass's page
// loop checks ctx once per page and aborts with ctx's error when it is
// canceled or past its deadline. Answers completed (or partially collected)
// before the abort stay buffered in the session.
func (s *Session) MultiQueryAllContext(ctx context.Context, queries []Query) ([]*query.AnswerList, Stats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.multiQueryAllLocked(ctx, queries)
}

// multiQueryAllLocked is MultiQueryAllContext's body; the caller holds
// s.mu (ExplainAllContext shares it after attaching the explain state).
func (s *Session) multiQueryAllLocked(ctx context.Context, queries []Query) ([]*query.AnswerList, Stats, error) {
	tr := s.proc.tracer
	traced := tr.Enabled()
	var begin time.Time
	if traced {
		begin = time.Now()
	}
	// As in MultiQueryContext, accounting brackets prepare so Prepare-time
	// pivot distances land in this call's PivotDistCalcs.
	acct := s.beginAccounting()
	states, results, err := s.prepare(queries)
	if err != nil {
		return nil, Stats{}, err
	}

	var stats Stats
	var matrixStart time.Time
	if s.explain != nil {
		matrixStart = time.Now()
	}
	sp := tr.Start(obs.PhaseMatrix)
	matrix := s.queryDistMatrix(queries, &stats)
	sp.End()
	if ex := s.explain; ex != nil {
		ex.observe(obs.PhaseMatrix, time.Since(matrixStart))
	}
	pos := identityPositions(len(states))

	record := func() {
		if traced {
			tr.RecordQuery("multi_all", len(queries), time.Since(begin), stats.PagesRead, stats.DistCalcs, stats.Avoided)
		}
	}
	for i := range states {
		if states[i].done {
			continue
		}
		if err := s.run(ctx, states[i:], matrix, pos[i:], &stats); err != nil {
			acct.finish(&stats)
			record()
			return nil, stats, err
		}
		stats.Queries++
	}
	acct.finish(&stats)
	record()
	return results, stats, nil
}

// MultiQuery is the convenience entry point for a one-shot batch: it runs a
// fresh session to completion and returns the complete answers for every
// query.
func (p *Processor) MultiQuery(queries []Query) ([]*query.AnswerList, Stats, error) {
	return p.NewSession().MultiQueryAll(queries)
}

// MultiQueryContext is MultiQuery with cancellation, running a fresh session
// to completion under ctx.
func (p *Processor) MultiQueryContext(ctx context.Context, queries []Query) ([]*query.AnswerList, Stats, error) {
	return p.NewSession().MultiQueryAllContext(ctx, queries)
}
