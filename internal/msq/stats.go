// Package msq implements the paper's core contribution: single similarity
// queries (Figure 1) and multiple similarity queries (Figure 4) over any
// engine, with incremental first-query-complete semantics, answer
// buffering across calls, and triangle-inequality avoidance of distance
// calculations (Lemmas 1 and 2).
package msq

import "metricdb/internal/store"

// Stats records the cost of query processing in exactly the units the
// paper's evaluation uses: data-page reads for I/O cost and distance
// calculations / triangle-inequality comparisons for CPU cost.
type Stats struct {
	// Queries is the number of query objects processed.
	Queries int64
	// PagesRead counts data pages read from the simulated disk (buffer
	// hits are free). This is Figure 7's I/O cost.
	PagesRead int64
	// PageVisits counts (page, query) processing events: one page
	// visited for three queries counts three visits but (at most) one
	// read.
	PageVisits int64
	// DistCalcs counts object-to-query distance calculations, excluding
	// the query-distance matrix. Figure 8's CPU cost.
	DistCalcs int64
	// MatrixDistCalcs counts the m(m-1)/2 query-pair distance
	// calculations of the preprocessing step (§5.2's initialization
	// overhead, quadratic in m).
	MatrixDistCalcs int64
	// AvoidTries counts triangle-inequality evaluations, successful or
	// not ("avoiding_tries" in the C^m_CPU formula).
	AvoidTries int64
	// Avoided counts distance calculations skipped thanks to the
	// triangle inequality.
	Avoided int64
	// QuantFiltered counts (query, item) pairs rejected by the quantized
	// lower-bound filter before any exact distance calculation: the
	// VA-file-style cell bound already exceeded the query's pruning
	// radius. A filtered pair appears in neither DistCalcs nor Avoided —
	// it is a third, cheaper disposal. Answers and page reads are
	// unaffected because the bound is conservative: every pair that could
	// be an answer survives to the exact float64 kernel.
	QuantFiltered int64
	// PivotDistCalcs counts the query-to-pivot distance calculations paid
	// by pivot-based engines in Engine.Prepare (the pivot table's and the
	// PM-tree's per-query setup). They are real metric evaluations, kept
	// separate from DistCalcs so the filter's fixed cost is visible next
	// to the object-distance calculations it saves; they never affect the
	// Lemma 1/2 accounting invariants, which range over object distances.
	PivotDistCalcs int64
	// PartialAbandoned counts the subset of DistCalcs that the bounded
	// distance kernels resolved early: the running partial result already
	// exceeded the query's pruning bound, so the exact distance was
	// irrelevant and the per-coordinate loop stopped mid-vector. An
	// abandoned calculation is still a full member of the DistCalcs +
	// Avoided accounting — abandonment saves the tail of the loop, not
	// the call — so all paper invariants over those counters are
	// unchanged by the kernels.
	PartialAbandoned int64
	// Degraded marks a result assembled under failures: some partition of
	// the data could not be consulted, so answer lists are a sound subset
	// of the fault-free result (k-NN answers become bounded-k-NN answers
	// over the surviving partitions).
	Degraded bool
	// PartitionsTotal and PartitionsAnswered describe coverage when the
	// result was produced by a partitioned (parallel) execution: how many
	// partitions the data is declustered over and how many contributed
	// answers. Both are zero for single-node execution.
	PartitionsTotal    int64
	PartitionsAnswered int64
}

// Add returns the component-wise sum of s and t.
func (s Stats) Add(t Stats) Stats {
	return Stats{
		Queries:          s.Queries + t.Queries,
		PagesRead:        s.PagesRead + t.PagesRead,
		PageVisits:       s.PageVisits + t.PageVisits,
		DistCalcs:        s.DistCalcs + t.DistCalcs,
		MatrixDistCalcs:  s.MatrixDistCalcs + t.MatrixDistCalcs,
		AvoidTries:       s.AvoidTries + t.AvoidTries,
		Avoided:          s.Avoided + t.Avoided,
		QuantFiltered:    s.QuantFiltered + t.QuantFiltered,
		PivotDistCalcs:   s.PivotDistCalcs + t.PivotDistCalcs,
		PartialAbandoned: s.PartialAbandoned + t.PartialAbandoned,

		Degraded:           s.Degraded || t.Degraded,
		PartitionsTotal:    s.PartitionsTotal + t.PartitionsTotal,
		PartitionsAnswered: s.PartitionsAnswered + t.PartitionsAnswered,
	}
}

// Coverage returns the fraction of partitions that contributed answers, or
// 1 for single-node execution (no partitioning recorded).
func (s Stats) Coverage() float64 {
	if s.PartitionsTotal == 0 {
		return 1
	}
	return float64(s.PartitionsAnswered) / float64(s.PartitionsTotal)
}

// TotalDistCalcs returns all distance calculations including the
// query-distance matrix.
func (s Stats) TotalDistCalcs() int64 { return s.DistCalcs + s.MatrixDistCalcs }

// ioSnapshot captures disk statistics so deltas can be attributed to one
// query-processing call.
func ioSnapshot(p *store.Pager) store.IOStats { return p.Disk().Stats() }
