package admit_test

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"metricdb/internal/admit"
	"metricdb/internal/msq"
	"metricdb/internal/query"
	"metricdb/internal/scan"
	"metricdb/internal/store"
	"metricdb/internal/vec"
)

// testDB builds a deterministic uniform dataset.
func testDB(seed int64, n, dim int) []store.Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]store.Item, n)
	for i := range items {
		v := make(vec.Vector, dim)
		for j := range v {
			v[j] = rng.Float64()
		}
		items[i] = store.Item{ID: store.ItemID(i), Vec: v}
	}
	return items
}

// slowMetric delays every distance evaluation, making block execution take
// long enough for tests to pile submissions up behind the former
// deterministically.
type slowMetric struct {
	delay time.Duration
}

func (m slowMetric) Distance(a, b vec.Vector) float64 {
	if m.delay > 0 {
		time.Sleep(m.delay)
	}
	return vec.Euclidean{}.Distance(a, b)
}

func (slowMetric) Name() string { return "slow-euclidean" }

func newProc(t *testing.T, items []store.Item, m vec.Metric) *msq.Processor {
	t.Helper()
	e, err := scan.New(items, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	proc, err := msq.New(e, m, msq.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return proc
}

func testQueries(seed int64, n, dim int) []msq.Query {
	rng := rand.New(rand.NewSource(seed))
	qs := make([]msq.Query, n)
	for i := range qs {
		v := make(vec.Vector, dim)
		for j := range v {
			v[j] = rng.Float64()
		}
		// Deliberately reuse one caller-side ID for every query: independent
		// callers pick IDs freely, and the controller must renumber.
		qs[i] = msq.Query{ID: 7, Vec: v, Type: query.NewKNN(5)}
	}
	return qs
}

func sameAnswers(a, b []query.Answer) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Dist != b[i].Dist {
			return false
		}
	}
	return true
}

// TestBitIdentityAndBatching drives concurrent submissions through the
// controller and checks the tentpole contract: every admitted answer is
// bit-identical to the unbatched sequential evaluation of the same query,
// and independent callers actually get grouped into blocks wider than one.
func TestBitIdentityAndBatching(t *testing.T) {
	const n, dim, m = 1024, 8, 24
	items := testDB(1, n, dim)
	proc := newProc(t, items, vec.Euclidean{})
	ctl, err := admit.New(proc, admit.Config{
		MaxWait:  50 * time.Millisecond,
		MaxWidth: 8,
		Pressure: func() float64 { return 1 }, // always aim for MaxWidth
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()

	queries := testQueries(2, m, dim)
	type out struct {
		answers []query.Answer
		width   int
		err     error
	}
	results := make([]out, m)
	var wg sync.WaitGroup
	for i := range queries {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a, _, w, _, err := ctl.Submit(context.Background(), queries[i])
			results[i] = out{answers: a, width: w, err: err}
		}(i)
	}
	wg.Wait()

	maxWidth := 0
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("query %d: %v", i, r.err)
		}
		ref, _, err := proc.Single(queries[i].Vec, queries[i].Type)
		if err != nil {
			t.Fatal(err)
		}
		if !sameAnswers(r.answers, ref.Answers()) {
			t.Fatalf("query %d: batched answers differ from sequential reference", i)
		}
		if r.width > maxWidth {
			maxWidth = r.width
		}
	}
	if maxWidth <= 1 {
		t.Fatalf("no cross-caller batch formed: max width %d, want > 1", maxWidth)
	}
	if got := ctl.Admitted(); got != m {
		t.Fatalf("admitted %d, want %d", got, m)
	}
	if avg := ctl.AvgWidth(); avg <= 1 {
		t.Fatalf("achieved mean width %.2f, want > 1", avg)
	}
}

// TestQueueFullShed fills the bounded queue while the former is stuck in a
// slow block and checks the overflow submission is shed before any work,
// with a positive retry-after hint.
func TestQueueFullShed(t *testing.T) {
	const dim = 4
	items := testDB(3, 256, dim)
	proc := newProc(t, items, slowMetric{delay: 50 * time.Microsecond})
	ctl, err := admit.New(proc, admit.Config{
		MaxQueue: 2,
		MaxWait:  time.Nanosecond, // release blocks immediately
		MaxWidth: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()

	queries := testQueries(4, 16, dim)
	var wg sync.WaitGroup
	sawFull := make(chan *admit.Overload, 16)
	for i := range queries {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, _, _, err := ctl.Submit(context.Background(), queries[i])
			var ov *admit.Overload
			switch {
			case errors.As(err, &ov) && ov.Reason == admit.ReasonQueueFull:
				sawFull <- ov
			case errors.As(err, &ov) && ov.Reason == admit.ReasonDeadline:
				// 16 slow queries through a 1-wide former can also outrun
				// the default SLO budget; a structured deadline shed is a
				// correct outcome here, just not the one being counted.
			case err != nil:
				t.Errorf("query %d: unexpected error %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	close(sawFull)
	shed := 0
	for ov := range sawFull {
		shed++
		if ov.RetryAfter <= 0 {
			t.Fatalf("queue-full shed without retry-after hint: %v", ov)
		}
	}
	if shed == 0 {
		t.Fatal("16 submissions through a 2-slot queue with a slow engine: expected at least one queue_full shed")
	}
	full, _, _ := ctl.ShedByReason()
	if full != int64(shed) {
		t.Fatalf("ShedByReason queue_full = %d, want %d", full, shed)
	}
}

// TestDeadlineShed submits with a hopeless SLO budget and checks the
// request is shed with ReasonDeadline instead of being executed late.
func TestDeadlineShed(t *testing.T) {
	const dim = 4
	items := testDB(5, 128, dim)
	proc := newProc(t, items, vec.Euclidean{})
	ctl, err := admit.New(proc, admit.Config{DefaultSLO: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()

	q := testQueries(6, 1, dim)[0]
	_, _, _, _, err = ctl.Submit(context.Background(), q)
	var ov *admit.Overload
	if !errors.As(err, &ov) || ov.Reason != admit.ReasonDeadline {
		t.Fatalf("got %v, want Overload(deadline)", err)
	}
	if ov.RetryAfter <= 0 {
		t.Fatalf("deadline shed without retry-after hint: %v", ov)
	}
	if _, dl, _ := ctl.ShedByReason(); dl != 1 {
		t.Fatalf("ShedByReason deadline = %d, want 1", dl)
	}
}

// TestCanceledContext checks a submission abandoned by its caller returns
// the context error and is not counted admitted.
func TestCanceledContext(t *testing.T) {
	const dim = 4
	items := testDB(7, 128, dim)
	proc := newProc(t, items, slowMetric{delay: 20 * time.Microsecond})
	ctl, err := admit.New(proc, admit.Config{MaxWait: time.Nanosecond, MaxWidth: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()

	// Occupy the former with a real query, then cancel a queued one.
	var wg sync.WaitGroup
	queries := testQueries(8, 2, dim)
	wg.Add(1)
	go func() {
		defer wg.Done()
		ctl.Submit(context.Background(), queries[0]) //nolint:errcheck
	}()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, _, _, err = ctl.Submit(ctx, queries[1])
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	wg.Wait()
}

// TestCloseSheds checks Submit after Close is shed with ReasonShutdown and
// that Close is idempotent.
func TestCloseSheds(t *testing.T) {
	const dim = 4
	items := testDB(9, 128, dim)
	proc := newProc(t, items, vec.Euclidean{})
	ctl, err := admit.New(proc, admit.Config{})
	if err != nil {
		t.Fatal(err)
	}
	q := testQueries(10, 1, dim)[0]
	if _, _, _, _, err := ctl.Submit(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	ctl.Close()
	ctl.Close() // idempotent
	_, _, _, _, err = ctl.Submit(context.Background(), q)
	var ov *admit.Overload
	if !errors.As(err, &ov) || ov.Reason != admit.ReasonShutdown {
		t.Fatalf("got %v, want Overload(shutting_down)", err)
	}
}

// TestConfigValidation checks bad configs are rejected up front.
func TestConfigValidation(t *testing.T) {
	proc := newProc(t, testDB(11, 64, 4), vec.Euclidean{})
	for _, cfg := range []admit.Config{
		{MinWidth: 8, MaxWidth: 2},
		{MaxQueue: -1},
		{MaxWait: -time.Second},
	} {
		if _, err := admit.New(proc, cfg); err == nil {
			t.Fatalf("config %+v accepted, want error", cfg)
		}
	}
	if _, err := admit.New(nil, admit.Config{}); err == nil {
		t.Fatal("nil processor accepted, want error")
	}
}

// TestInvalidQuery checks Submit validates before queueing.
func TestInvalidQuery(t *testing.T) {
	proc := newProc(t, testDB(12, 64, 4), vec.Euclidean{})
	ctl, err := admit.New(proc, admit.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	if _, _, _, _, err := ctl.Submit(context.Background(), msq.Query{}); err == nil {
		t.Fatal("invalid query admitted, want validation error")
	}
}

// TestBlockObserverAndPredictBlock wires the calibration hooks in: every
// successfully executed block must reach the observer with its queries and
// stats, and a pessimistic PredictBlock must shed submissions whose
// deadline its prediction says cannot be met.
func TestBlockObserverAndPredictBlock(t *testing.T) {
	const n, dim, m = 512, 8, 12
	items := testDB(3, n, dim)
	proc := newProc(t, items, vec.Euclidean{})

	var mu sync.Mutex
	var observedQueries, observedBatches int
	ctl, err := admit.New(proc, admit.Config{
		MaxWait:  20 * time.Millisecond,
		MaxWidth: 4,
		BlockObserver: func(qs []msq.Query, stats msq.Stats, elapsed time.Duration) {
			mu.Lock()
			defer mu.Unlock()
			observedBatches++
			observedQueries += len(qs)
			if stats.PagesRead == 0 {
				t.Error("observer saw a block with zero pages read")
			}
			if elapsed <= 0 {
				t.Error("observer saw a non-positive elapsed time")
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	queries := testQueries(4, m, dim)
	var wg sync.WaitGroup
	for i := range queries {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, _, _, _, err := ctl.Submit(context.Background(), queries[i]); err != nil {
				t.Errorf("query %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	ctl.Close()
	mu.Lock()
	defer mu.Unlock()
	if observedQueries != m {
		t.Fatalf("observer saw %d queries, want %d", observedQueries, m)
	}
	if observedBatches == 0 {
		t.Fatal("observer saw no batches")
	}

	// A model predicting far past every deadline must shed at release.
	proc2 := newProc(t, items, vec.Euclidean{})
	ctl2, err := admit.New(proc2, admit.Config{
		DefaultSLO:   50 * time.Millisecond,
		PredictBlock: func(qs []msq.Query) time.Duration { return time.Hour },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctl2.Close()
	_, _, _, _, err = ctl2.Submit(context.Background(), queries[0])
	var ov *admit.Overload
	if !errors.As(err, &ov) || ov.Reason != admit.ReasonDeadline {
		t.Fatalf("want deadline shed from PredictBlock, got %v", err)
	}

	// A zero prediction means "no prediction": the EWMA path admits.
	proc3 := newProc(t, items, vec.Euclidean{})
	ctl3, err := admit.New(proc3, admit.Config{
		PredictBlock: func(qs []msq.Query) time.Duration { return 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctl3.Close()
	if _, _, _, _, err := ctl3.Submit(context.Background(), queries[0]); err != nil {
		t.Fatalf("zero prediction should admit: %v", err)
	}
}
