// Package admit is the admission-control and cross-caller batch-forming
// layer of the query server: a bounded queue plus an online batch former
// that collects concurrently arriving *single* similarity queries into
// m-wide multiple-similarity-query blocks (§5.3 of the paper), so the I/O
// and distance-avoidance amortization that previously required one caller
// to hand the server m queries now emerges from independent callers.
//
// The controller enforces a latency SLO by shedding early: a request that
// cannot be admitted within its deadline budget is rejected *before* it
// costs any page I/O or distance work, with a structured Overload error
// carrying a retry-after hint so well-behaved clients back off instead of
// hammering a saturated server. Admitted requests return answers that are
// bit-identical to an unbatched sequential evaluation — the triangle-
// inequality avoidance of the multi-query processor is exact, so batching
// changes cost, never results.
//
// # Compatibility
//
// A Controller is bound to one msq.Processor, i.e. one (dataset, engine,
// metric) triple; every query submitted to it is batch-compatible by
// construction. A server fronting several datasets runs one controller per
// backing processor and routes by dataset — the compatibility key is
// structural, not checked per request.
//
// # Sizing
//
// The target block width is chosen per block, adaptively: the backlog
// (queries already waiting) widens blocks under load, and a pressure
// signal in [0, 1] — by default derived from the live buffer-pool miss
// ratio and, when a tracer is installed, the page_fetch share of the obs
// phase histograms — widens them further when the workload is I/O-bound,
// which is exactly when sharing one page pass across more queries pays
// most. Width never exceeds MaxWidth, so the quadratic query-distance-
// matrix overhead (§5.2) stays bounded.
package admit

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"metricdb/internal/msq"
	"metricdb/internal/obs"
	"metricdb/internal/query"
	"metricdb/internal/store"
)

// Reason classifies why a request was shed.
type Reason string

// Shed reasons.
const (
	// ReasonQueueFull: the bounded admission queue had no slot.
	ReasonQueueFull Reason = "queue_full"
	// ReasonDeadline: the request's SLO budget cannot cover the predicted
	// queueing plus execution time (or had already expired while queued).
	ReasonDeadline Reason = "deadline"
	// ReasonShutdown: the controller is closed or closing.
	ReasonShutdown Reason = "shutting_down"
)

// Overload is the structured shedding error: the request was rejected
// before any I/O or distance work, and RetryAfter hints when the caller
// should try again (an estimate of the time for the current backlog to
// drain; zero only when the controller is shutting down for good).
type Overload struct {
	Reason     Reason
	RetryAfter time.Duration
}

// Error renders the overload error.
func (e *Overload) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("admit: overloaded (%s), retry after %v", e.Reason, e.RetryAfter)
	}
	return fmt.Sprintf("admit: overloaded (%s)", e.Reason)
}

// Config tunes a Controller. The zero value selects the documented
// defaults.
type Config struct {
	// MaxQueue bounds the admission queue: requests arriving while
	// MaxQueue submissions are already waiting are shed with
	// ReasonQueueFull. Zero selects DefaultMaxQueue.
	MaxQueue int
	// MinWidth and MaxWidth bound the formed block width m. Zero selects
	// DefaultMinWidth / DefaultMaxWidth.
	MinWidth int
	MaxWidth int
	// MaxWait caps how long the former lingers waiting for more arrivals
	// to widen a block. The effective linger is the minimum of MaxWait
	// and the oldest member's SLO slack (deadline minus predicted
	// execution time), so a tight deadline releases a narrow block early
	// rather than blowing the SLO. Zero selects DefaultMaxWait.
	MaxWait time.Duration
	// DefaultSLO is the deadline budget applied to submissions whose
	// context carries no deadline. Zero selects DefaultDefaultSLO.
	DefaultSLO time.Duration
	// MaxRetryAfter caps the retry-after hint. Zero selects
	// DefaultMaxRetryAfter.
	MaxRetryAfter time.Duration
	// Pressure, when non-nil, overrides the built-in pressure signal.
	// It must return a value in [0, 1]; values outside are clamped.
	Pressure func() float64
	// Tracer, when non-nil, receives one admit_wait observation per
	// admitted query (enqueue to block release). Nil disables at no cost.
	Tracer *obs.Tracer
	// PredictBlock, when non-nil, predicts the wall time of executing the
	// given queries as one block (the calibrated cost model's width-m
	// pricing). The release gate takes the maximum of this prediction and
	// its own execution EWMA before applying the safety factor, so a
	// trustworthy model can shed doomed work the EWMA is too coarse to
	// see. A return of 0 means "no prediction" and the gate falls back to
	// the EWMA alone. Nil disables (the default).
	PredictBlock func(queries []msq.Query) time.Duration
	// BlockObserver, when non-nil, receives every successfully executed
	// block (its queries, batch Stats, and wall time) after delivery
	// accounting — the calibration recorder's feed. Nil disables.
	BlockObserver func(queries []msq.Query, stats msq.Stats, elapsed time.Duration)
}

// Config defaults.
const (
	DefaultMaxQueue      = 256
	DefaultMinWidth      = 1
	DefaultMaxWidth      = 16
	DefaultMaxWait       = 2 * time.Millisecond
	DefaultDefaultSLO    = time.Second
	DefaultMaxRetryAfter = 5 * time.Second
)

func (c *Config) withDefaults() error {
	if c.MaxQueue < 0 || c.MinWidth < 0 || c.MaxWidth < 0 {
		return fmt.Errorf("admit: negative limit in config")
	}
	if c.MaxWait < 0 || c.DefaultSLO < 0 || c.MaxRetryAfter < 0 {
		return fmt.Errorf("admit: negative duration in config")
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = DefaultMaxQueue
	}
	if c.MinWidth == 0 {
		c.MinWidth = DefaultMinWidth
	}
	if c.MaxWidth == 0 {
		c.MaxWidth = DefaultMaxWidth
	}
	if c.MinWidth > c.MaxWidth {
		return fmt.Errorf("admit: MinWidth %d > MaxWidth %d", c.MinWidth, c.MaxWidth)
	}
	if c.MaxWait == 0 {
		c.MaxWait = DefaultMaxWait
	}
	if c.DefaultSLO == 0 {
		c.DefaultSLO = DefaultDefaultSLO
	}
	if c.MaxRetryAfter == 0 {
		c.MaxRetryAfter = DefaultMaxRetryAfter
	}
	return nil
}

// result is one waiter's outcome. service is the in-system time from
// submission to answer ready, stamped by the former at delivery — the
// quantity the SLO governs, free of the receiver's scheduling delay.
type result struct {
	answers []query.Answer
	stats   msq.Stats
	width   int
	service time.Duration
	err     error
}

// waiter is one queued submission. The former goroutine is the single
// owner after enqueue; exactly one result is ever sent on done (buffered),
// so an abandoned waiter (context canceled while queued) leaks nothing.
type waiter struct {
	q        msq.Query
	ctx      context.Context
	enqueued time.Time
	deadline time.Time
	done     chan result
}

// Controller is the admission queue plus batch former over one processor.
// Submit is safe for concurrent use by any number of callers; blocks are
// executed one at a time by a single former goroutine (arrivals during an
// execution accumulate in the queue and form the next, wider, block —
// the queue is what turns bursts into batch width instead of collapse).
type Controller struct {
	proc *msq.Processor
	cfg  Config
	buf  *store.Buffer

	queue chan *waiter

	mu     sync.Mutex
	closed bool
	done   chan struct{}

	// execEWMA and perQueryEWMA track recent batch execution wall time
	// and per-admitted-query service time (ns, exponentially weighted
	// moving averages) for SLO slack prediction and retry-after hints.
	execEWMA     atomic.Int64
	perQueryEWMA atomic.Int64

	submitted      atomic.Int64
	admitted       atomic.Int64
	canceled       atomic.Int64
	batches        atomic.Int64
	batchedQueries atomic.Int64
	shedFull       atomic.Int64
	shedDeadline   atomic.Int64
	shedShutdown   atomic.Int64
	widthTarget    atomic.Int64
}

// New creates a Controller over proc and starts its former goroutine.
// Close must be called to release it.
func New(proc *msq.Processor, cfg Config) (*Controller, error) {
	if proc == nil {
		return nil, fmt.Errorf("admit: nil processor")
	}
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	c := &Controller{
		proc:  proc,
		cfg:   cfg,
		buf:   proc.Engine().Pager().Buffer(),
		queue: make(chan *waiter, cfg.MaxQueue),
		done:  make(chan struct{}),
	}
	c.widthTarget.Store(int64(cfg.MinWidth))
	go c.former()
	return c, nil
}

// Close drains the controller: queued submissions that have not been
// formed into a block are shed with ReasonShutdown, the in-flight block
// (if any) finishes, and the former goroutine exits. Close is idempotent;
// Submit after Close sheds immediately.
func (c *Controller) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		<-c.done
		return
	}
	c.closed = true
	close(c.queue)
	c.mu.Unlock()
	<-c.done
}

func (c *Controller) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// Submit admits one single similarity query into the batch former and
// blocks until its block has executed (returning answers bit-identical to
// an unbatched sequential evaluation, plus the executed block's statistics
// and width) or until it is shed. Shed requests return a *Overload error
// before any I/O or distance work has been spent on them.
//
// The deadline budget is ctx's deadline when one is set, else now +
// DefaultSLO. The SLO is enforced at admission and release: a request
// whose remaining slack cannot cover the predicted execution time is shed
// with a retry-after hint instead of being started and abandoned halfway.
// On success the returned width is the executed block's size and service
// is the in-system time (submission to answer ready) stamped by the
// former — the latency the SLO governs, excluding the scheduling delay
// between delivery and this goroutine resuming.
func (c *Controller) Submit(ctx context.Context, q msq.Query) ([]query.Answer, msq.Stats, int, time.Duration, error) {
	if err := q.Validate(); err != nil {
		return nil, msq.Stats{}, 0, 0, err
	}
	c.submitted.Add(1)
	now := time.Now()
	deadline, ok := ctx.Deadline()
	if !ok {
		deadline = now.Add(c.cfg.DefaultSLO)
	}
	// Early shed at the door: the predicted time through the system is the
	// backlog's drain time plus one block execution; a budget that cannot
	// cover it means this request would only be shed later anyway, after
	// occupying a queue slot someone else could use.
	predicted := time.Duration(int64(len(c.queue)))*time.Duration(c.perQueryEWMA.Load()) +
		time.Duration(c.execEWMA.Load())
	if deadline.Sub(now) <= predicted {
		c.shedDeadline.Add(1)
		return nil, msq.Stats{}, 0, 0, &Overload{Reason: ReasonDeadline, RetryAfter: c.retryAfter()}
	}

	w := &waiter{q: q, ctx: ctx, enqueued: now, deadline: deadline, done: make(chan result, 1)}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.shedShutdown.Add(1)
		return nil, msq.Stats{}, 0, 0, &Overload{Reason: ReasonShutdown}
	}
	select {
	case c.queue <- w:
		c.mu.Unlock()
	default:
		c.mu.Unlock()
		c.shedFull.Add(1)
		return nil, msq.Stats{}, 0, 0, &Overload{Reason: ReasonQueueFull, RetryAfter: c.retryAfter()}
	}

	select {
	case res := <-w.done:
		if res.err != nil {
			return nil, res.stats, res.width, 0, res.err
		}
		return res.answers, res.stats, res.width, res.service, nil
	case <-ctx.Done():
		// The former will observe the dead context and drop the waiter;
		// if it raced us and already resolved it, prefer that outcome.
		select {
		case res := <-w.done:
			if res.err != nil {
				return nil, res.stats, res.width, 0, res.err
			}
			return res.answers, res.stats, res.width, res.service, nil
		default:
		}
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			// The SLO budget ran out while queued: a deadline shed, so
			// the caller gets the structured error and retry hint.
			c.shedDeadline.Add(1)
			return nil, msq.Stats{}, 0, 0, &Overload{Reason: ReasonDeadline, RetryAfter: c.retryAfter()}
		}
		return nil, msq.Stats{}, 0, 0, fmt.Errorf("admit: %w", ctx.Err())
	}
}

// former is the batch-forming loop: wait for a first arrival, linger up
// to the SLO-capped MaxWait while the block is below the adaptive target
// width, then execute the block on a fresh session.
func (c *Controller) former() {
	defer close(c.done)
	for {
		w, ok := <-c.queue
		if !ok {
			return
		}
		if c.isClosed() {
			c.shed(w, &Overload{Reason: ReasonShutdown})
			continue
		}
		if !c.live(w) {
			continue
		}
		block := c.collect(w)
		if len(block) > 0 {
			c.execute(block)
		}
	}
}

// live reports whether a dequeued waiter is still worth serving, shedding
// it otherwise: canceled contexts are dropped silently (the caller is
// gone), expired deadlines are shed with ReasonDeadline.
func (c *Controller) live(w *waiter) bool {
	if w.ctx.Err() != nil {
		c.canceled.Add(1)
		return false
	}
	if !time.Now().Before(w.deadline) {
		c.shed(w, &Overload{Reason: ReasonDeadline, RetryAfter: c.retryAfter()})
		return false
	}
	return true
}

// shed delivers a structured overload error to one waiter.
func (c *Controller) shed(w *waiter, err *Overload) {
	switch err.Reason {
	case ReasonQueueFull:
		c.shedFull.Add(1)
	case ReasonDeadline:
		c.shedDeadline.Add(1)
	case ReasonShutdown:
		c.shedShutdown.Add(1)
	}
	w.done <- result{err: err}
}

// collect forms one block starting from first: it keeps accepting queued
// arrivals until the block reaches the adaptive target width or the
// linger budget — MaxWait, capped by the oldest member's SLO slack net of
// the predicted execution time — runs out.
func (c *Controller) collect(first *waiter) []*waiter {
	block := []*waiter{first}
	target := c.targetWidth()
	if target <= 1 {
		return block
	}
	linger := c.cfg.MaxWait
	if slack := time.Until(first.deadline) - time.Duration(c.execEWMA.Load()); slack < linger {
		linger = slack
	}
	if linger <= 0 {
		return block
	}
	timer := time.NewTimer(linger)
	defer timer.Stop()
	for len(block) < target {
		select {
		case w, ok := <-c.queue:
			if !ok {
				// Closed mid-collect: execute what was admitted.
				return block
			}
			if c.isClosed() {
				c.shed(w, &Overload{Reason: ReasonShutdown})
				return block
			}
			if c.live(w) {
				block = append(block, w)
			}
		case <-timer.C:
			return block
		}
	}
	return block
}

// execute runs one block as a multiple similarity query on a fresh
// session and distributes the per-query answers. Queries are renumbered
// by block position — caller-chosen IDs from independent connections
// collide freely — and each waiter's answers are copied out, so nothing
// of the discarded session escapes. A last pre-execution deadline check
// sheds members whose budget ran out while the block was forming.
func (c *Controller) execute(block []*waiter) {
	released := time.Now()
	// Predicted execution time for THIS block: the per-member EWMA scaled
	// by the block's width (wide blocks take longer than the whole-block
	// EWMA warmed up on narrow ones), floored at the whole-block EWMA, and
	// doubled to stay conservative — shedding a request that would have
	// just made it is a recoverable mistake, blowing its SLO is not.
	predicted := time.Duration(c.perQueryEWMA.Load()) * time.Duration(len(block))
	if whole := time.Duration(c.execEWMA.Load()); whole > predicted {
		predicted = whole
	}
	// The calibrated cost model, when wired in and past its evidence
	// floor, can price THIS block's width and shape instead of
	// extrapolating from past blocks; take whichever estimate is more
	// pessimistic before the safety factor.
	if c.cfg.PredictBlock != nil {
		qs := make([]msq.Query, len(block))
		for i, w := range block {
			qs[i] = w.q
		}
		if p := c.cfg.PredictBlock(qs); p > predicted {
			predicted = p
		}
	}
	predicted *= 2
	live := block[:0]
	for _, w := range block {
		if !c.live(w) {
			continue
		}
		// SLO enforcement at release: starting work whose predicted
		// completion lands past the deadline only produces an answer
		// nobody is waiting for. Shed it now, before it costs I/O.
		if predicted > 0 && time.Until(w.deadline) <= predicted {
			c.shed(w, &Overload{Reason: ReasonDeadline, RetryAfter: c.retryAfter()})
			continue
		}
		live = append(live, w)
	}
	if len(live) == 0 {
		return
	}
	if tr := c.cfg.Tracer; tr.Enabled() {
		for _, w := range live {
			tr.Observe(obs.PhaseAdmitWait, released.Sub(w.enqueued))
		}
	}

	queries := make([]msq.Query, len(live))
	for i, w := range live {
		q := w.q
		q.ID = uint64(i)
		queries[i] = q
	}
	lists, stats, err := c.proc.NewSession().MultiQueryAll(queries)
	elapsed := time.Since(released)

	c.batches.Add(1)
	c.batchedQueries.Add(int64(len(live)))
	ewma(&c.execEWMA, int64(elapsed))
	ewma(&c.perQueryEWMA, int64(elapsed)/int64(len(live)))
	if err == nil && c.cfg.BlockObserver != nil {
		c.cfg.BlockObserver(queries, stats, elapsed)
	}

	if err != nil {
		for _, w := range live {
			w.done <- result{err: fmt.Errorf("admit: batch execution: %w", err), width: len(live)}
		}
		return
	}
	ready := time.Now()
	for i, w := range live {
		// The SLO is a promise, not a preference: a block that overran
		// its prediction past a member's deadline produced an answer the
		// caller's budget no longer covers, and delivering it late would
		// let admitted tail latency drift past the SLO exactly when the
		// system is too loaded to honor it. Shed it — the work is sunk
		// either way, but the caller gets a retryable structured error
		// instead of a broken latency contract.
		if ready.After(w.deadline) {
			c.shed(w, &Overload{Reason: ReasonDeadline, RetryAfter: c.retryAfter()})
			continue
		}
		c.admitted.Add(1)
		w.done <- result{
			answers: append([]query.Answer(nil), lists[i].Answers()...),
			stats:   stats,
			width:   len(live),
			service: ready.Sub(w.enqueued),
		}
	}
}

// ewma folds one sample into an exponentially weighted moving average
// with weight 1/4 (a compromise between reacting to load shifts and not
// chasing one outlier batch). The first sample seeds the average.
func ewma(avg *atomic.Int64, sample int64) {
	old := avg.Load()
	if old == 0 {
		avg.Store(sample)
		return
	}
	avg.Store(old + (sample-old)/4)
}

// retryAfter estimates how long the current backlog needs to drain: queue
// depth times the per-query service EWMA, clamped to [1ms, MaxRetryAfter].
// It is a hint, not a reservation — the point is to spread retries out
// instead of synchronizing them into the next collapse.
func (c *Controller) retryAfter() time.Duration {
	per := c.perQueryEWMA.Load()
	if per <= 0 {
		per = int64(time.Millisecond)
	}
	est := time.Duration(int64(len(c.queue)+1) * per)
	if est < time.Millisecond {
		est = time.Millisecond
	}
	if est > c.cfg.MaxRetryAfter {
		est = c.cfg.MaxRetryAfter
	}
	return est
}

// targetWidth picks the block width for the next block: the backlog
// widens it (queries already waiting should share one page pass), the
// pressure signal widens it further, MaxWidth bounds it.
func (c *Controller) targetWidth() int {
	minW, maxW := c.cfg.MinWidth, c.cfg.MaxWidth
	w := minW + int(math.Round(c.pressure()*float64(maxW-minW)))
	if backlog := len(c.queue) + 1; backlog > w {
		w = backlog
	}
	if w > maxW {
		w = maxW
	}
	if w < minW {
		w = minW
	}
	c.widthTarget.Store(int64(w))
	return w
}

// pressure returns the I/O-boundedness signal in [0, 1]. With no override
// configured it is the larger of the live buffer-pool miss ratio and —
// when the processor has a tracer — the page_fetch share of the phase
// histograms' accumulated wall time against the CPU phases (kernel +
// avoid). Both rise exactly when one more query sharing a page pass saves
// the most repeated work.
func (c *Controller) pressure() float64 {
	if c.cfg.Pressure != nil {
		return clamp01(c.cfg.Pressure())
	}
	var p float64
	if c.buf != nil {
		if h, m, _ := c.buf.HitRate(); h+m > 0 {
			p = float64(m) / float64(h+m)
		}
	}
	if tr := c.proc.Tracer(); tr.Enabled() {
		fetch := tr.Snapshot(obs.PhasePageFetch).SumNs
		cpu := tr.Snapshot(obs.PhaseKernel).SumNs + tr.Snapshot(obs.PhaseAvoid).SumNs
		if fetch+cpu > 0 {
			if share := float64(fetch) / float64(fetch+cpu); share > p {
				p = share
			}
		}
	}
	return clamp01(p)
}

func clamp01(v float64) float64 {
	switch {
	case v < 0 || math.IsNaN(v):
		return 0
	case v > 1:
		return 1
	}
	return v
}

// Metrics accessors; all are safe under concurrent load.

// QueueDepth returns the number of submissions currently queued.
func (c *Controller) QueueDepth() int { return len(c.queue) }

// Submitted returns the number of Submit calls accepted for processing
// (sheds included).
func (c *Controller) Submitted() int64 { return c.submitted.Load() }

// Admitted returns the number of queries answered through a block.
func (c *Controller) Admitted() int64 { return c.admitted.Load() }

// Shed returns the total number of shed requests.
func (c *Controller) Shed() int64 {
	return c.shedFull.Load() + c.shedDeadline.Load() + c.shedShutdown.Load()
}

// ShedByReason returns the shed counts split by reason.
func (c *Controller) ShedByReason() (queueFull, deadline, shutdown int64) {
	return c.shedFull.Load(), c.shedDeadline.Load(), c.shedShutdown.Load()
}

// Canceled returns the number of waiters dropped because their context
// was canceled while they were queued.
func (c *Controller) Canceled() int64 { return c.canceled.Load() }

// Batches returns the number of executed blocks.
func (c *Controller) Batches() int64 { return c.batches.Load() }

// BatchedQueries returns the number of queries executed across all
// blocks; BatchedQueries / Batches is the achieved mean block width.
func (c *Controller) BatchedQueries() int64 { return c.batchedQueries.Load() }

// AvgWidth returns the achieved mean block width (0 before any block).
func (c *Controller) AvgWidth() float64 {
	b := c.batches.Load()
	if b == 0 {
		return 0
	}
	return float64(c.batchedQueries.Load()) / float64(b)
}

// WidthTarget returns the most recently chosen adaptive target width.
func (c *Controller) WidthTarget() int { return int(c.widthTarget.Load()) }
