// Package calib closes the advisor's feedback loop: for every executed
// batch it pairs the cost model's predicted EngineEstimate with the
// observed msq.Stats deltas, keeps a bounded ring of those samples plus
// per-engine EWMA residuals, and fits per-engine correction state online —
// multiplicative counter factors (geometric EWMAs of the observed/predicted
// ratios, clamped in log space so one pathological batch cannot poison the
// state) and fitted time-unit constants (ns per distance calculation from
// the kernel-phase wall time, ns per page read from the fetch-phase wall
// time, and a wall-time scale against the model's nominal total).
//
// The recorder is strictly observational: it never touches a counting
// metric, a pager, or an engine — Record consumes numbers the caller
// already has, and Calibrate/PredictWall are pure arithmetic over the
// recorded state. Corrections are never applied mid-batch: the residual a
// sample contributes is computed against the state as it stood *before*
// that sample is folded in (leave-one-out), which is also what makes the
// calibrated error an honest out-of-sample measurement rather than a fit
// to the batch being judged.
//
// Determinism: the recorder uses no randomness — the same sample sequence
// always produces the same state bit for bit. Config.Seed is provenance
// only: it names the seed the caller's *predictions* were derived under
// (intrinsic-dimension sampling), so a snapshot records which prediction
// stream the residuals belong to.
package calib

import (
	"math"
	"sort"
	"sync"
	"time"

	"metricdb/internal/cost"
)

// Defaults for Config's zero values.
const (
	DefaultRingSize   = 256
	DefaultAlpha      = 0.25
	DefaultMinSamples = 8
)

// factorClamp bounds one sample's |log(observed/predicted)| at log(1024):
// a single batch can move a factor by at most three orders of magnitude,
// so a degenerate observation (a zero counter, a warm-buffer fluke) bends
// the EWMA instead of breaking it.
var factorClamp = math.Log(1024)

// Config tunes a Recorder. The zero value selects the documented defaults.
type Config struct {
	// RingSize bounds the retained sample history (the residual ring
	// exposed by Snapshot). Zero selects DefaultRingSize.
	RingSize int `json:"ring_size"`
	// Alpha is the EWMA weight of one new sample in (0, 1]. Zero selects
	// DefaultAlpha.
	Alpha float64 `json:"alpha"`
	// MinSamples is the evidence floor: PredictWall returns 0 (no
	// prediction) for engines with fewer recorded samples, so consumers —
	// the admission release gate above all — fall back to their own
	// estimates instead of trusting two data points. Zero selects
	// DefaultMinSamples. Counter factors apply from the first sample;
	// they only rescale a ranking, they never gate a shed.
	MinSamples int `json:"min_samples"`
	// Seed is provenance: the seed the caller's predictions were sampled
	// under. The recorder itself is deterministic and uses no randomness.
	Seed int64 `json:"seed"`
}

func (c Config) withDefaults() Config {
	if c.RingSize <= 0 {
		c.RingSize = DefaultRingSize
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = DefaultAlpha
	}
	if c.MinSamples <= 0 {
		c.MinSamples = DefaultMinSamples
	}
	return c
}

// Observed is the measured counterpart of one predicted EngineEstimate:
// the msq.Stats deltas of the executed batch plus its wall-time split.
type Observed struct {
	// DistCalcs, PivotDistCalcs and PagesRead are the batch's Stats deltas
	// in the cost model's own units.
	DistCalcs      int64 `json:"dist_calcs"`
	PivotDistCalcs int64 `json:"pivot_dist_calcs,omitempty"`
	PagesRead      int64 `json:"pages_read"`
	// KernelNs and FetchNs are the batch's kernel(+avoid) and page-fetch
	// phase wall times when the run was profiled or traced; zero when
	// unknown (the fitted unit constants then simply do not update).
	KernelNs int64 `json:"kernel_ns,omitempty"`
	FetchNs  int64 `json:"fetch_ns,omitempty"`
	// WallNs is the batch's total wall time.
	WallNs int64 `json:"wall_ns"`
}

// Sample is one executed batch: the advisor's prediction for the engine
// that actually ran, and what the run measured.
type Sample struct {
	Engine    string              `json:"engine"`
	Width     int                 `json:"width"`
	Predicted cost.EngineEstimate `json:"predicted"`
	Observed  Observed            `json:"observed"`
	// RawErr and CalErr are the sample's absolute relative errors on
	// (DistCalcs, PagesRead) under the raw model and under the calibration
	// state as it stood before this sample was folded in (leave-one-out).
	// Stamped by Record; callers leave them zero.
	RawErrDistCalcs float64 `json:"raw_err_dist_calcs"`
	CalErrDistCalcs float64 `json:"cal_err_dist_calcs"`
	RawErrPagesRead float64 `json:"raw_err_pages_read"`
	CalErrPagesRead float64 `json:"cal_err_pages_read"`
}

// ewma is one exponentially weighted average with a sample count (the
// first sample seeds the average).
type ewma struct {
	v float64
	n int64
}

func (e *ewma) fold(sample, alpha float64) {
	if e.n == 0 {
		e.v = sample
	} else {
		e.v += alpha * (sample - e.v)
	}
	e.n++
}

// engineState is the per-engine calibration state.
type engineState struct {
	samples int64
	// logDist / logPages are geometric-EWMA factors in log space:
	// exp(logDist.v) multiplies the model's DistCalcs prediction.
	logDist  ewma
	logPages ewma
	// Residual EWMAs: absolute relative error of the raw model and of the
	// leave-one-out calibrated model, per counter.
	rawErrDist  ewma
	calErrDist  ewma
	rawErrPages ewma
	calErrPages ewma
	// Fitted unit constants from the phase wall times.
	fitDistNs ewma // ns per distance calculation (kernel phase)
	fitPageNs ewma // ns per page read (fetch phase)
	// timeScale maps the model's nominal Total onto this host's wall
	// clock: EWMA of observed wall / predicted total.
	timeScale ewma
}

// Recorder accumulates predicted-vs-observed samples and serves calibrated
// estimates. Safe for concurrent use.
type Recorder struct {
	cfg Config

	mu      sync.Mutex
	engines map[string]*engineState
	ring    []Sample // bounded at cfg.RingSize, oldest first
	total   int64
}

// NewRecorder returns an empty recorder with cfg's defaults applied.
func NewRecorder(cfg Config) *Recorder {
	return &Recorder{cfg: cfg.withDefaults(), engines: map[string]*engineState{}}
}

// Config returns the recorder's resolved configuration.
func (r *Recorder) Config() Config { return r.cfg }

// absRelErr is |predicted - observed| / observed; an unobservable counter
// (observed 0) reports the predicted magnitude as the error (a prediction
// of 0 is then exact).
func absRelErr(predicted float64, observed int64) float64 {
	if observed == 0 {
		if predicted == 0 {
			return 0
		}
		return predicted
	}
	return math.Abs(predicted-float64(observed)) / float64(observed)
}

// logRatio returns log(observed/predicted) clamped to ±factorClamp, and
// whether the pair yields a usable ratio (predicted > 0; an observed 0 is
// clamped instead of producing -Inf).
func logRatio(predicted float64, observed int64) (float64, bool) {
	if predicted <= 0 {
		return 0, false
	}
	if observed <= 0 {
		return -factorClamp, true
	}
	lr := math.Log(float64(observed) / predicted)
	if lr > factorClamp {
		lr = factorClamp
	} else if lr < -factorClamp {
		lr = -factorClamp
	}
	return lr, true
}

// Record folds one executed batch into the calibration state. The sample's
// residual fields are stamped against the pre-update state (leave-one-out:
// the calibrated error is measured with the factors the advisor would
// actually have used before this batch ran), then the factors, fitted
// constants and ring are updated. The returned sample is the stamped copy.
func (r *Recorder) Record(s Sample) Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.engines[s.Engine]
	if st == nil {
		st = &engineState{}
		r.engines[s.Engine] = st
	}
	a := r.cfg.Alpha

	// Residuals first, against the pre-update factors.
	predDist := float64(s.Predicted.DistCalcs)
	predPages := float64(s.Predicted.PagesRead)
	calDist := predDist * math.Exp(st.logDist.v)
	calPages := predPages * math.Exp(st.logPages.v)
	s.RawErrDistCalcs = absRelErr(predDist, s.Observed.DistCalcs)
	s.CalErrDistCalcs = absRelErr(calDist, s.Observed.DistCalcs)
	s.RawErrPagesRead = absRelErr(predPages, s.Observed.PagesRead)
	s.CalErrPagesRead = absRelErr(calPages, s.Observed.PagesRead)
	st.rawErrDist.fold(s.RawErrDistCalcs, a)
	st.calErrDist.fold(s.CalErrDistCalcs, a)
	st.rawErrPages.fold(s.RawErrPagesRead, a)
	st.calErrPages.fold(s.CalErrPagesRead, a)

	// Then the state update: factors...
	if lr, ok := logRatio(predDist, s.Observed.DistCalcs); ok {
		st.logDist.fold(lr, a)
	}
	if lr, ok := logRatio(predPages, s.Observed.PagesRead); ok {
		st.logPages.fold(lr, a)
	}
	// ...fitted unit constants from the phase splits...
	if s.Observed.KernelNs > 0 && s.Observed.DistCalcs > 0 {
		st.fitDistNs.fold(float64(s.Observed.KernelNs)/float64(s.Observed.DistCalcs), a)
	}
	if s.Observed.FetchNs > 0 && s.Observed.PagesRead > 0 {
		st.fitPageNs.fold(float64(s.Observed.FetchNs)/float64(s.Observed.PagesRead), a)
	}
	// ...and the nominal-total-to-wall scale.
	if s.Observed.WallNs > 0 && s.Predicted.Total > 0 {
		st.timeScale.fold(float64(s.Observed.WallNs)/float64(s.Predicted.Total), a)
	}
	st.samples++
	r.total++

	if len(r.ring) == r.cfg.RingSize {
		copy(r.ring, r.ring[1:])
		r.ring = r.ring[:len(r.ring)-1]
	}
	r.ring = append(r.ring, s)
	return s
}

// Samples returns the total number of recorded samples.
func (r *Recorder) Samples() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// EngineSamples returns the number of recorded samples for one engine.
func (r *Recorder) EngineSamples(engine string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if st := r.engines[engine]; st != nil {
		return st.samples
	}
	return 0
}

// CalibrateOne applies the engine's learned counter factors to one raw
// estimate: DistCalcs and CPU scale by the distance factor, PagesRead and
// IO by the page factor, Total is re-derived. An engine with no recorded
// samples passes through unchanged.
func (r *Recorder) CalibrateOne(est cost.EngineEstimate) cost.EngineEstimate {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.calibrateLocked(est)
}

func (r *Recorder) calibrateLocked(est cost.EngineEstimate) cost.EngineEstimate {
	st := r.engines[est.Engine]
	if st == nil || st.samples == 0 {
		return est
	}
	fd := math.Exp(st.logDist.v)
	fp := math.Exp(st.logPages.v)
	est.DistCalcs = int64(math.Ceil(float64(est.DistCalcs) * fd))
	est.PagesRead = int64(math.Ceil(float64(est.PagesRead) * fp))
	est.CPU = time.Duration(float64(est.CPU) * fd)
	est.IO = time.Duration(float64(est.IO) * fp)
	est.Total = est.IO + est.CPU
	return est
}

// Calibrate applies the learned per-engine factors to a raw ranking and
// re-sorts by the corrected totals (ties by name, as EstimateBatch does).
// Engines without samples keep their raw estimates, so a ranking over a
// mixed fleet degrades gracefully to the raw model where evidence is
// missing.
func (r *Recorder) Calibrate(ests []cost.EngineEstimate) []cost.EngineEstimate {
	r.mu.Lock()
	out := make([]cost.EngineEstimate, len(ests))
	for i, e := range ests {
		out[i] = r.calibrateLocked(e)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total < out[j].Total
		}
		return out[i].Engine < out[j].Engine
	})
	return out
}

// PredictWall predicts the wall time of a batch priced as est, from the
// fitted unit constants when both are available (ns/dist × calibrated
// distance count + ns/page × calibrated page count) and otherwise from the
// nominal-total-to-wall scale. It returns 0 — no prediction — below the
// MinSamples evidence floor, so consumers fall back to their own
// estimators instead of trusting a barely warmed-up fit.
func (r *Recorder) PredictWall(est cost.EngineEstimate) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.engines[est.Engine]
	if st == nil || st.samples < int64(r.cfg.MinSamples) {
		return 0
	}
	cal := r.calibrateLocked(est)
	if st.fitDistNs.n > 0 && st.fitPageNs.n > 0 {
		ns := st.fitDistNs.v*float64(cal.DistCalcs+cal.PivotDistCalcs) +
			st.fitPageNs.v*float64(cal.PagesRead)
		return time.Duration(ns)
	}
	if st.timeScale.n == 0 {
		return 0
	}
	return time.Duration(st.timeScale.v * float64(est.Total))
}

// AbsPctError returns the engine's EWMA absolute relative error for one
// counter ("dist_calcs" or "pages_read"), under the calibrated
// (leave-one-out) model when calibrated is true and the raw model
// otherwise. Unknown engines and counters report 0.
func (r *Recorder) AbsPctError(engine, counter string, calibrated bool) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.engines[engine]
	if st == nil {
		return 0
	}
	switch {
	case counter == "dist_calcs" && calibrated:
		return st.calErrDist.v
	case counter == "dist_calcs":
		return st.rawErrDist.v
	case counter == "pages_read" && calibrated:
		return st.calErrPages.v
	case counter == "pages_read":
		return st.rawErrPages.v
	}
	return 0
}

// Factor returns the engine's learned multiplicative correction for one
// counter ("dist_calcs" or "pages_read"); 1 before any sample.
func (r *Recorder) Factor(engine, counter string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.engines[engine]
	if st == nil {
		return 1
	}
	switch counter {
	case "dist_calcs":
		return math.Exp(st.logDist.v)
	case "pages_read":
		return math.Exp(st.logPages.v)
	}
	return 1
}

// FittedNs returns the engine's fitted time constant in nanoseconds for
// one unit ("dist_calc", "page_read") or the dimensionless wall scale
// ("time_scale"); 0 while unfitted.
func (r *Recorder) FittedNs(engine, unit string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.engines[engine]
	if st == nil {
		return 0
	}
	switch unit {
	case "dist_calc":
		return st.fitDistNs.v
	case "page_read":
		return st.fitPageNs.v
	case "time_scale":
		return st.timeScale.v
	}
	return 0
}

// EngineSnapshot is one engine's calibration state at a point in time.
type EngineSnapshot struct {
	Engine  string `json:"engine"`
	Samples int64  `json:"samples"`
	// FactorDistCalcs / FactorPagesRead multiply the raw model's counters.
	FactorDistCalcs float64 `json:"factor_dist_calcs"`
	FactorPagesRead float64 `json:"factor_pages_read"`
	// Raw vs calibrated EWMA absolute relative errors, per counter. The
	// calibrated figures are leave-one-out: each contributing sample was
	// judged with the factors that preceded it.
	RawAbsPctErrDistCalcs float64 `json:"raw_abs_pct_err_dist_calcs"`
	CalAbsPctErrDistCalcs float64 `json:"cal_abs_pct_err_dist_calcs"`
	RawAbsPctErrPagesRead float64 `json:"raw_abs_pct_err_pages_read"`
	CalAbsPctErrPagesRead float64 `json:"cal_abs_pct_err_pages_read"`
	// Fitted unit constants (0 while unfitted) and the wall scale.
	FittedDistCalcNs float64 `json:"fitted_dist_calc_ns"`
	FittedPageReadNs float64 `json:"fitted_page_read_ns"`
	TimeScale        float64 `json:"time_scale"`
}

// Snapshot is a point-in-time view of the whole recorder: configuration,
// per-engine state (sorted by engine name), and the residual history ring
// (oldest first).
type Snapshot struct {
	Config  Config           `json:"config"`
	Samples int64            `json:"samples"`
	Engines []EngineSnapshot `json:"engines,omitempty"`
	Ring    []Sample         `json:"ring,omitempty"`
}

// Snapshot copies the recorder state. history bounds the returned ring
// (most recent samples win); pass 0 to omit the ring, a negative value for
// the whole retained history.
func (r *Recorder) Snapshot(history int) Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := Snapshot{Config: r.cfg, Samples: r.total}
	for name, st := range r.engines {
		snap.Engines = append(snap.Engines, EngineSnapshot{
			Engine:                name,
			Samples:               st.samples,
			FactorDistCalcs:       math.Exp(st.logDist.v),
			FactorPagesRead:       math.Exp(st.logPages.v),
			RawAbsPctErrDistCalcs: st.rawErrDist.v,
			CalAbsPctErrDistCalcs: st.calErrDist.v,
			RawAbsPctErrPagesRead: st.rawErrPages.v,
			CalAbsPctErrPagesRead: st.calErrPages.v,
			FittedDistCalcNs:      st.fitDistNs.v,
			FittedPageReadNs:      st.fitPageNs.v,
			TimeScale:             st.timeScale.v,
		})
	}
	sort.Slice(snap.Engines, func(i, j int) bool { return snap.Engines[i].Engine < snap.Engines[j].Engine })
	if history != 0 {
		ring := r.ring
		if history > 0 && len(ring) > history {
			ring = ring[len(ring)-history:]
		}
		snap.Ring = append([]Sample(nil), ring...)
	}
	return snap
}
