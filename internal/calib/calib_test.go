package calib

import (
	"math"
	"sync"
	"testing"
	"time"

	"metricdb/internal/cost"
)

func sample(engine string, predDist, obsDist, predPages, obsPages int64) Sample {
	return Sample{
		Engine: engine,
		Width:  8,
		Predicted: cost.EngineEstimate{
			Engine:    engine,
			DistCalcs: predDist,
			PagesRead: predPages,
			CPU:       time.Duration(predDist) * time.Microsecond,
			IO:        time.Duration(predPages) * time.Millisecond,
			Total:     time.Duration(predDist)*time.Microsecond + time.Duration(predPages)*time.Millisecond,
		},
		Observed: Observed{
			DistCalcs: obsDist,
			PagesRead: obsPages,
			WallNs:    int64(time.Millisecond),
		},
	}
}

// The recorder is deterministic: the same sample sequence yields the same
// snapshot bit for bit.
func TestDeterministic(t *testing.T) {
	build := func() Snapshot {
		r := NewRecorder(Config{Seed: 42})
		for i := int64(1); i <= 20; i++ {
			r.Record(sample("scan", 100*i, 150*i, 10*i, 9*i))
			r.Record(sample("pivot", 80*i, 20*i, 5*i, 5*i))
		}
		return r.Snapshot(-1)
	}
	a, b := build(), build()
	if len(a.Ring) != len(b.Ring) || len(a.Engines) != len(b.Engines) {
		t.Fatalf("snapshots differ in shape: %+v vs %+v", a, b)
	}
	for i := range a.Engines {
		if a.Engines[i] != b.Engines[i] {
			t.Fatalf("engine %d differs: %+v vs %+v", i, a.Engines[i], b.Engines[i])
		}
	}
	for i := range a.Ring {
		if a.Ring[i] != b.Ring[i] {
			t.Fatalf("ring %d differs: %+v vs %+v", i, a.Ring[i], b.Ring[i])
		}
	}
}

// Residuals are leave-one-out: the first sample's calibrated error equals
// its raw error (no factor existed yet), and a repeated constant bias
// drives the calibrated error below the raw error while raw stays put.
func TestLeaveOneOutResiduals(t *testing.T) {
	r := NewRecorder(Config{})
	s := r.Record(sample("scan", 100, 200, 10, 20))
	if s.RawErrDistCalcs != s.CalErrDistCalcs {
		t.Fatalf("first sample should have cal == raw error: %v vs %v", s.RawErrDistCalcs, s.CalErrDistCalcs)
	}
	if got := s.RawErrDistCalcs; math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("raw err = %v, want 0.5", got)
	}
	for i := 0; i < 30; i++ {
		s = r.Record(sample("scan", 100, 200, 10, 20))
	}
	if s.CalErrDistCalcs >= s.RawErrDistCalcs {
		t.Fatalf("after constant bias, calibrated error %v should beat raw %v", s.CalErrDistCalcs, s.RawErrDistCalcs)
	}
	snap := r.Snapshot(0)
	if len(snap.Engines) != 1 {
		t.Fatalf("want 1 engine, got %d", len(snap.Engines))
	}
	e := snap.Engines[0]
	if e.CalAbsPctErrDistCalcs >= e.RawAbsPctErrDistCalcs {
		t.Fatalf("EWMA calibrated err %v should beat raw %v", e.CalAbsPctErrDistCalcs, e.RawAbsPctErrDistCalcs)
	}
	// Factor converges toward the true ratio 2.0.
	if f := r.Factor("scan", "dist_calcs"); math.Abs(f-2.0) > 0.05 {
		t.Fatalf("factor = %v, want ~2.0", f)
	}
	if f := r.Factor("scan", "pages_read"); math.Abs(f-2.0) > 0.05 {
		t.Fatalf("pages factor = %v, want ~2.0", f)
	}
}

func TestRingBounded(t *testing.T) {
	r := NewRecorder(Config{RingSize: 4})
	for i := int64(0); i < 10; i++ {
		r.Record(sample("scan", 100+i, 100, 10, 10))
	}
	snap := r.Snapshot(-1)
	if len(snap.Ring) != 4 {
		t.Fatalf("ring len = %d, want 4", len(snap.Ring))
	}
	// Oldest-first: the ring holds the last four samples (i = 6..9).
	if got := snap.Ring[0].Predicted.DistCalcs; got != 106 {
		t.Fatalf("ring[0] pred dist = %d, want 106", got)
	}
	if got := snap.Ring[3].Predicted.DistCalcs; got != 109 {
		t.Fatalf("ring[3] pred dist = %d, want 109", got)
	}
	if snap.Samples != 10 {
		t.Fatalf("total samples = %d, want 10", snap.Samples)
	}
	// Snapshot(history) bounds the returned copy too.
	if got := len(r.Snapshot(2).Ring); got != 2 {
		t.Fatalf("Snapshot(2) ring len = %d, want 2", got)
	}
	if got := len(r.Snapshot(0).Ring); got != 0 {
		t.Fatalf("Snapshot(0) ring len = %d, want 0", got)
	}
}

// Calibrate rescales counters and times and re-sorts by corrected Total;
// engines without samples pass through raw.
func TestCalibrateResorts(t *testing.T) {
	r := NewRecorder(Config{})
	// Teach the recorder that scan's predictions are 4x too low.
	for i := 0; i < 40; i++ {
		r.Record(sample("scan", 100, 400, 10, 40))
	}
	raw := []cost.EngineEstimate{
		{Engine: "scan", DistCalcs: 100, PagesRead: 10, CPU: 1 * time.Millisecond, IO: 1 * time.Millisecond, Total: 2 * time.Millisecond},
		{Engine: "pivot", DistCalcs: 500, PagesRead: 50, CPU: 3 * time.Millisecond, IO: 3 * time.Millisecond, Total: 6 * time.Millisecond},
	}
	cal := r.Calibrate(raw)
	if len(cal) != 2 {
		t.Fatalf("len = %d", len(cal))
	}
	// scan's corrected total (~8ms) should now rank behind pivot's raw 6ms.
	if cal[0].Engine != "pivot" || cal[1].Engine != "scan" {
		t.Fatalf("calibrated order = %s,%s; want pivot,scan", cal[0].Engine, cal[1].Engine)
	}
	if cal[0] != raw[1] {
		t.Fatalf("unsampled engine should pass through unchanged: %+v vs %+v", cal[0], raw[1])
	}
	s := cal[1]
	if s.DistCalcs < 350 || s.DistCalcs > 450 {
		t.Fatalf("calibrated scan DistCalcs = %d, want ~400", s.DistCalcs)
	}
	if s.Total != s.IO+s.CPU {
		t.Fatalf("Total %v != IO %v + CPU %v", s.Total, s.IO, s.CPU)
	}
	// Input must not be mutated.
	if raw[0].DistCalcs != 100 {
		t.Fatalf("Calibrate mutated its input: %+v", raw[0])
	}
}

// PredictWall stays silent below MinSamples and predicts after.
func TestPredictWallMinSamples(t *testing.T) {
	r := NewRecorder(Config{MinSamples: 5})
	est := cost.EngineEstimate{Engine: "scan", DistCalcs: 100, PagesRead: 10, Total: time.Millisecond}
	for i := 0; i < 4; i++ {
		r.Record(sample("scan", 100, 100, 10, 10))
		if got := r.PredictWall(est); got != 0 {
			t.Fatalf("PredictWall below MinSamples = %v, want 0", got)
		}
	}
	r.Record(sample("scan", 100, 100, 10, 10))
	if got := r.PredictWall(est); got == 0 {
		t.Fatalf("PredictWall at MinSamples should predict, got 0")
	}
	if got := r.PredictWall(cost.EngineEstimate{Engine: "vafile", Total: time.Millisecond}); got != 0 {
		t.Fatalf("unknown engine should predict 0, got %v", got)
	}
}

// PredictWall prefers fitted unit constants when phase splits were
// observed: 1000 ns/dist × 100 dists + 10000 ns/page × 10 pages.
func TestPredictWallFittedConstants(t *testing.T) {
	r := NewRecorder(Config{MinSamples: 1})
	s := sample("scan", 100, 100, 10, 10)
	s.Observed.KernelNs = 100 * 1000
	s.Observed.FetchNs = 10 * 10000
	r.Record(s)
	est := s.Predicted
	got := r.PredictWall(est)
	want := time.Duration(100*1000 + 10*10000)
	if got != want {
		t.Fatalf("PredictWall = %v, want %v", got, want)
	}
}

// A pathological sample (observed 1000000x predicted) moves the factor by
// at most the clamp, not the raw ratio.
func TestFactorClamped(t *testing.T) {
	r := NewRecorder(Config{})
	r.Record(sample("scan", 1, 1_000_000_000, 1, 1))
	if f := r.Factor("scan", "dist_calcs"); f > 1025 {
		t.Fatalf("factor %v exceeds the 1024 clamp", f)
	}
	// Observed zero clamps downward instead of producing -Inf.
	r2 := NewRecorder(Config{})
	r2.Record(sample("scan", 1000, 0, 10, 10))
	if f := r2.Factor("scan", "dist_calcs"); math.IsInf(f, 0) || math.IsNaN(f) || f <= 0 {
		t.Fatalf("zero-observation factor = %v", f)
	}
}

func TestAccessors(t *testing.T) {
	r := NewRecorder(Config{})
	if r.AbsPctError("scan", "dist_calcs", false) != 0 || r.Factor("nope", "pages_read") != 1 || r.FittedNs("nope", "dist_calc") != 0 {
		t.Fatal("zero-state accessors should be inert")
	}
	s := sample("scan", 100, 150, 10, 10)
	s.Observed.KernelNs = 150 * 500
	s.Observed.FetchNs = 10 * 9000
	r.Record(s)
	if got := r.AbsPctError("scan", "dist_calcs", false); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Fatalf("raw abs pct err = %v, want 1/3", got)
	}
	if got := r.FittedNs("scan", "dist_calc"); math.Abs(got-500) > 1e-9 {
		t.Fatalf("fitted dist ns = %v, want 500", got)
	}
	if got := r.FittedNs("scan", "page_read"); math.Abs(got-9000) > 1e-9 {
		t.Fatalf("fitted page ns = %v, want 9000", got)
	}
	if got := r.EngineSamples("scan"); got != 1 {
		t.Fatalf("engine samples = %d, want 1", got)
	}
	if got := r.Samples(); got != 1 {
		t.Fatalf("samples = %d, want 1", got)
	}
}

// Concurrent Record/Calibrate/Snapshot under -race.
func TestConcurrentRecord(t *testing.T) {
	r := NewRecorder(Config{RingSize: 32})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := int64(0); i < 200; i++ {
				r.Record(sample("scan", 100, 100+i, 10, 10))
				r.CalibrateOne(cost.EngineEstimate{Engine: "scan", DistCalcs: 100, PagesRead: 10})
				if i%32 == 0 {
					r.Snapshot(8)
					r.PredictWall(cost.EngineEstimate{Engine: "scan", Total: time.Millisecond})
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Samples(); got != 8*200 {
		t.Fatalf("samples = %d, want %d", got, 8*200)
	}
}
