package experiments

import (
	"fmt"
	"math"

	"metricdb/internal/cost"
	"metricdb/internal/msq"
	"metricdb/internal/report"
	"metricdb/internal/store"
	"metricdb/internal/vec"
)

// Measurement is the per-configuration outcome of a sweep cell: total work
// of processing M queries in blocks of m.
type Measurement struct {
	M       int // block size
	Total   int // number of queries processed
	Stats   msq.Stats
	IO      store.IOStats
	PerCost cost.Breakdown // total priced cost (not yet divided by Total)
}

// PagesPerQuery returns the average I/O cost per query in pages.
func (m Measurement) PagesPerQuery() float64 {
	return float64(m.Stats.PagesRead) / float64(m.Total)
}

// DistCalcsPerQuery returns the average CPU cost per query in distance
// calculations, including the query-distance matrix share.
func (m Measurement) DistCalcsPerQuery() float64 {
	return float64(m.Stats.TotalDistCalcs()) / float64(m.Total)
}

// CostPerQuery returns the average priced total cost per query in seconds.
func (m Measurement) CostPerQuery() float64 {
	return m.PerCost.Total().Seconds() / float64(m.Total)
}

// runBlocks processes the given queries in consecutive blocks of m multiple
// similarity queries on a fresh engine, mirroring §5's setting of M ≥ m
// queries evaluated in M/m blocks.
func runBlocks(mk EngineMaker, queries []msq.Query, m int, model cost.Model) (Measurement, error) {
	return RunBlocks(mk, queries, m, model, msq.AvoidBoth)
}

// RunBlocks is runBlocks with an explicit avoidance mode, used by the
// ablation benchmarks.
func RunBlocks(mk EngineMaker, queries []msq.Query, m int, model cost.Model, avoid msq.AvoidanceMode) (Measurement, error) {
	if m < 1 {
		return Measurement{}, fmt.Errorf("experiments: block size %d", m)
	}
	eng, err := mk.Make()
	if err != nil {
		return Measurement{}, err
	}
	metric := vec.NewCounting(vec.Euclidean{})
	proc, err := msq.New(eng, metric, msq.Options{Avoidance: avoid})
	if err != nil {
		return Measurement{}, err
	}
	ioBefore := eng.Pager().Disk().Stats()

	var total msq.Stats
	for start := 0; start < len(queries); start += m {
		end := start + m
		if end > len(queries) {
			end = len(queries)
		}
		session := proc.NewSession()
		_, st, err := session.MultiQueryAll(queries[start:end])
		if err != nil {
			return Measurement{}, err
		}
		total = total.Add(st)
	}

	io := diffIO(eng.Pager().Disk().Stats(), ioBefore)
	return Measurement{
		M:       m,
		Total:   len(queries),
		Stats:   total,
		IO:      io,
		PerCost: model.Of(total, io),
	}, nil
}

func diffIO(after, before store.IOStats) store.IOStats {
	return store.IOStats{
		Reads:     after.Reads - before.Reads,
		SeqReads:  after.SeqReads - before.SeqReads,
		RandReads: after.RandReads - before.RandReads,
	}
}

// Sweep runs the full m-sweep for one workload over both engines,
// producing the raw measurements behind Figures 7–10.
type Sweep struct {
	Workload string
	MValues  []int
	// Scan and XTree hold one measurement per m value.
	Scan  []Measurement
	XTree []Measurement
}

// RunSweep evaluates M = max(mValues) queries in blocks of each m.
func RunSweep(w Workload, mValues []int, model cost.Model) (*Sweep, error) {
	maxM := 0
	for _, m := range mValues {
		if m > maxM {
			maxM = m
		}
	}
	queries, err := w.Queries(w.querySeed(), maxM)
	if err != nil {
		return nil, err
	}

	sw := &Sweep{Workload: w.Name, MValues: mValues}
	makers := []EngineMaker{ScanMaker(w), XTreeMaker(w)}
	for _, mk := range makers {
		for _, m := range mValues {
			meas, err := runBlocks(mk, queries, m, model)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s/%s m=%d: %w", w.Name, mk.Name, m, err)
			}
			if mk.Name == "scan" {
				sw.Scan = append(sw.Scan, meas)
			} else {
				sw.XTree = append(sw.XTree, meas)
			}
		}
	}
	return sw, nil
}

func (w Workload) querySeed() int64 { return int64(len(w.Items)) * 31 }

// figure assembles a two-series (scan, xtree) figure from a sweep with the
// given per-measurement metric.
func (s *Sweep) figure(title, ylabel string, metric func(Measurement) float64) *report.Figure {
	f := &report.Figure{
		Title:  fmt.Sprintf("%s (%s database)", title, s.Workload),
		XLabel: "m",
		YLabel: ylabel,
		XVals:  intsToFloats(s.MValues),
	}
	scanY := make([]float64, len(s.Scan))
	for i, m := range s.Scan {
		scanY[i] = metric(m)
	}
	xtreeY := make([]float64, len(s.XTree))
	for i, m := range s.XTree {
		xtreeY[i] = metric(m)
	}
	// AddSeries cannot fail here: lengths match MValues by construction.
	_ = f.AddSeries("scan", scanY)
	_ = f.AddSeries("xtree", xtreeY)
	return f
}

// Fig7 is the average I/O cost per similarity query (pages) vs m.
func (s *Sweep) Fig7() *report.Figure {
	return s.figure("Figure 7: avg I/O cost per similarity query", "pages", Measurement.PagesPerQuery)
}

// Fig8 is the average CPU cost per similarity query (distance
// calculations) vs m.
func (s *Sweep) Fig8() *report.Figure {
	return s.figure("Figure 8: avg CPU cost per similarity query", "distance calcs", Measurement.DistCalcsPerQuery)
}

// Fig9 is the average total (priced) query cost vs m.
func (s *Sweep) Fig9() *report.Figure {
	return s.figure("Figure 9: avg total query cost per similarity query", "seconds", Measurement.CostPerQuery)
}

// Fig10 is the speed-up of m multiple queries over m single queries.
func (s *Sweep) Fig10() *report.Figure {
	base := s.figure("", "", Measurement.CostPerQuery)
	f := &report.Figure{
		Title:  fmt.Sprintf("Figure 10: speed-up wrt m (%s database)", s.Workload),
		XLabel: "m",
		YLabel: "speed-up vs m=1",
		XVals:  intsToFloats(s.MValues),
	}
	for _, series := range base.Series {
		y := make([]float64, len(series.Y))
		for i := range series.Y {
			if series.Y[i] == 0 {
				y[i] = math.NaN()
				continue
			}
			y[i] = series.Y[0] / series.Y[i]
		}
		_ = f.AddSeries(series.Name, y)
	}
	return f
}

func intsToFloats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// MicroFigure reports the distance-calculation vs triangle-comparison cost
// ratio (§6.2: 52× at 20 dimensions, 155× at 64).
func MicroFigure(dims []int) *report.Figure {
	f := &report.Figure{
		Title:  "Micro: distance calculation vs triangle-inequality comparison",
		XLabel: "dim",
		YLabel: "ns and ratio",
		XVals:  intsToFloats(dims),
	}
	dist := make([]float64, len(dims))
	comp := make([]float64, len(dims))
	ratio := make([]float64, len(dims))
	cmp := cost.MeasureCompareNs()
	for i, d := range dims {
		dc := cost.MeasureDistanceNs(vec.Euclidean{}, d)
		dist[i] = dc
		comp[i] = cmp
		if cmp > 0 {
			ratio[i] = dc / cmp
		}
	}
	_ = f.AddSeries("distance ns", dist)
	_ = f.AddSeries("compare ns", comp)
	_ = f.AddSeries("ratio", ratio)
	return f
}
