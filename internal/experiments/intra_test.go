package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"metricdb/internal/dataset"
	"metricdb/internal/msq"
	"metricdb/internal/query"
)

// tinyWorkload keeps the intra sweep test in the milliseconds.
func tinyWorkload(t *testing.T) Workload {
	t.Helper()
	items := dataset.Uniform(9, 500, 6)
	w := Workload{Name: "tiny", Items: items, Dim: 6, K: 5}
	w.Queries = func(seed int64, m int) ([]msq.Query, error) {
		picks, err := dataset.SampleQueries(seed, items, m)
		if err != nil {
			return nil, err
		}
		out := make([]msq.Query, len(picks))
		for i, it := range picks {
			out[i] = msq.Query{ID: uint64(it.ID), Vec: it.Vec, Type: query.NewKNN(5)}
		}
		return out, nil
	}
	return w
}

func TestRunIntra(t *testing.T) {
	widths := []int{1, 2, 4}
	sweep, err := RunIntra(tinyWorkload(t), widths, 8)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * len(widths); len(sweep.Results) != want { // scan + xtree
		t.Fatalf("got %d results, want %d", len(sweep.Results), want)
	}
	for _, r := range sweep.Results {
		if !r.Identical {
			t.Errorf("%s width %d: answers or page reads differ from sequential", r.Engine, r.Width)
		}
		if r.Seconds <= 0 || r.Speedup <= 0 {
			t.Errorf("%s width %d: non-positive timing %v / speedup %v", r.Engine, r.Width, r.Seconds, r.Speedup)
		}
	}

	fig := sweep.Figure()
	if len(fig.XVals) != len(widths) || len(fig.Series) != 2 {
		t.Errorf("figure shape: %d x-values, %d series", len(fig.XVals), len(fig.Series))
	}

	var buf bytes.Buffer
	if err := WriteIntraJSON(&buf, []*IntraSweep{sweep}); err != nil {
		t.Fatal(err)
	}
	var decoded []IntraSweep
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if len(decoded) != 1 || len(decoded[0].Results) != len(sweep.Results) {
		t.Error("artifact round-trip lost results")
	}
}
