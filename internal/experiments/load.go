package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"metricdb/internal/admit"
	"metricdb/internal/msq"
	"metricdb/internal/report"
	"metricdb/internal/vec"
	"metricdb/internal/wire"
)

// The load experiment is the end-to-end heavy-traffic proof for the
// admission-control layer: an open-loop generator drives a wire server
// with cross-caller batch forming through ramp, spike and
// sustained-overload profiles and records latency percentiles, shed rate
// and achieved batch width into BENCH_load.json.
//
// Rates are expressed relative to the server's own calibrated sequential
// capacity (measured on an identical server without admission control), so
// the profiles mean the same thing on a laptop and a loaded CI runner: the
// overload profile offers 3x what the server can serve sequentially,
// whatever that is in absolute QPS. The judged verdicts are scale-free:
// `identical` (every admitted answer bit-identical to the unbatched
// sequential reference) and `stable` (admitted p95 within the SLO, every
// overload shed structured with a retry-after hint, no unexpected errors —
// plus, under sustained overload, sheds actually happening and achieved
// batch width > 1 across independent callers). Absolute latencies and
// rates are recorded for inspection but deliberately use key names
// benchcompare does not judge.

// LoadProfileSpec is one traffic profile: an offered rate as a multiple of
// the calibrated capacity, sustained for a number of open-loop arrivals.
type LoadProfileSpec struct {
	Name     string
	RateXCap float64
	Arrivals int
}

// LoadConfig tunes the load experiment. The zero value selects defaults
// sized for a seconds-long CI run.
type LoadConfig struct {
	// QueryPool is the number of distinct queries the generator cycles
	// through (default 64).
	QueryPool int
	// MaxQueue, MaxWidth and MaxWait configure the server's admission
	// controller (defaults 128, 16, admit.DefaultMaxWait).
	MaxQueue int
	MaxWidth int
	MaxWait  time.Duration
	// SLOFactor sets the request deadline as a multiple of the calibrated
	// per-query sequential service time (default 50), clamped to
	// [5ms, 500ms].
	SLOFactor float64
	// Profiles overrides the default ramp/spike/overload sequence.
	Profiles []LoadProfileSpec
	// Seed varies the query pool (default 1).
	Seed int64
}

func (c *LoadConfig) withDefaults() {
	if c.QueryPool == 0 {
		c.QueryPool = 64
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 128
	}
	if c.MaxWidth == 0 {
		c.MaxWidth = 16
	}
	if c.SLOFactor == 0 {
		c.SLOFactor = 50
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if len(c.Profiles) == 0 {
		c.Profiles = []LoadProfileSpec{
			{Name: "ramp", RateXCap: 0.6, Arrivals: 400},
			{Name: "spike", RateXCap: 2.5, Arrivals: 300},
			{Name: "overload", RateXCap: 3.0, Arrivals: 1000},
		}
	}
}

// LoadRun is one profile's measurements and verdicts.
type LoadRun struct {
	Profile  string  `json:"profile"`
	RateXCap float64 `json:"rate_x_capacity"`
	Arrivals int     `json:"arrivals"`
	Admitted int     `json:"admitted"`
	Shed     int     `json:"shed"`
	// ShedRate is Shed / Arrivals.
	ShedRate float64 `json:"shed_rate"`
	// ErrorsOther counts responses that were neither success nor a
	// structured overload shed — the stable verdict requires zero.
	ErrorsOther int `json:"errors_other"`
	// Latency percentiles over admitted requests in milliseconds, taken
	// from the server's own in-system measurement (admission queue wait +
	// batch linger + block execution — the time the SLO governs).
	// Wall-clock values: recorded for inspection, not judged across
	// machines; only the derived Stable verdict is judged.
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
	// ClientP95Ms is the client-observed round-trip p95 over admitted
	// requests. On a machine where generator and server share cores it
	// includes scheduling delay the admission controller cannot govern,
	// so it is recorded for inspection only.
	ClientP95Ms float64 `json:"client_p95_ms"`
	// AvgWidth is the mean batch width over admitted requests; MaxWidth
	// is the widest block any admitted request rode in.
	AvgWidth float64 `json:"avg_width"`
	MaxWidth int     `json:"max_width"`
	// RetryAfterHints reports whether every overload shed carried a
	// positive retry-after hint.
	RetryAfterHints bool `json:"retry_after_hints"`
	// Identical: every admitted answer matched the unbatched sequential
	// reference bit for bit (judged by benchcompare).
	Identical bool `json:"identical"`
	// Stable: admitted p95 within the SLO, all sheds structured with
	// hints, no unexpected errors; under sustained overload additionally
	// sheds > 0 and achieved width > 1 (judged by benchcompare).
	Stable bool `json:"stable"`
}

// LoadResult is the load experiment's result document.
type LoadResult struct {
	Workload string `json:"workload"`
	N        int    `json:"n"`
	Dim      int    `json:"dim"`
	// CapacityQPS is the calibrated sequential service rate the profile
	// rates are multiples of (machine-dependent, not judged).
	CapacityQPS float64 `json:"capacity_qps"`
	// SLOMs is the per-request deadline budget derived from calibration.
	SLOMs    float64   `json:"slo_ms"`
	MaxQueue int       `json:"max_queue"`
	MaxWidth int       `json:"max_width_config"`
	Runs     []LoadRun `json:"runs"`
}

// loadHarness is the running experiment: two loopback servers over
// identically built engines — plain for calibration, admission-controlled
// for the load profiles — plus the query pool and its reference answers.
type loadHarness struct {
	cfg     LoadConfig
	specs   []wire.QuerySpec
	ref     [][]wire.Answer
	sloMs   int64
	admAddr string
	pool    chan *wire.Client
	servers []*wire.Server
}

func (l *loadHarness) close() {
	for {
		select {
		case c := <-l.pool:
			c.Close() //nolint:errcheck
		default:
			for _, s := range l.servers {
				s.Close() //nolint:errcheck
			}
			return
		}
	}
}

// startServer builds a fresh engine over w and serves it on loopback.
func startServer(w Workload, scfg wire.ServerConfig) (*wire.Server, string, error) {
	eng, err := ScanMaker(w).Make()
	if err != nil {
		return nil, "", err
	}
	proc, err := msq.New(eng, vec.Euclidean{}, msq.Options{})
	if err != nil {
		return nil, "", err
	}
	srv, err := wire.NewServerWithConfig(proc, scfg)
	if err != nil {
		return nil, "", err
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	go srv.Serve(lis) //nolint:errcheck
	return srv, lis.Addr().String(), nil
}

// RunLoad runs the load experiment over w.
func RunLoad(w Workload, cfg LoadConfig) (*LoadResult, error) {
	cfg.withDefaults()

	queries, err := w.Queries(cfg.Seed+57, cfg.QueryPool)
	if err != nil {
		return nil, err
	}
	specs := toSpecs(queries)

	// Unbatched sequential reference answers on an identically built
	// engine: the bit-identity yardstick for every admitted response.
	refEng, err := ScanMaker(w).Make()
	if err != nil {
		return nil, err
	}
	refProc, err := msq.New(refEng, vec.Euclidean{}, msq.Options{})
	if err != nil {
		return nil, err
	}
	ref := make([][]wire.Answer, len(queries))
	for i, q := range queries {
		l, _, err := refProc.Single(q.Vec, q.Type)
		if err != nil {
			return nil, err
		}
		for _, a := range l.Answers() {
			ref[i] = append(ref[i], wire.Answer{ID: uint64(a.ID), Dist: a.Dist})
		}
	}

	h := &loadHarness{cfg: cfg, specs: specs, ref: ref, pool: make(chan *wire.Client, 256)}
	defer h.close()

	// Calibration server: no admission control, so the closed loop
	// measures raw sequential service time including the wire codec.
	calSrv, calAddr, err := startServer(w, wire.ServerConfig{WriteTimeout: 10 * time.Second})
	if err != nil {
		return nil, err
	}
	h.servers = append(h.servers, calSrv)
	perQuery, err := h.calibrate(calAddr)
	if err != nil {
		return nil, err
	}
	capacity := float64(time.Second) / float64(perQuery)

	slo := time.Duration(cfg.SLOFactor * float64(perQuery))
	if slo < 5*time.Millisecond {
		slo = 5 * time.Millisecond
	}
	if slo > 500*time.Millisecond {
		slo = 500 * time.Millisecond
	}
	h.sloMs = slo.Milliseconds()

	admSrv, admAddr, err := startServer(w, wire.ServerConfig{
		WriteTimeout: 10 * time.Second,
		Admit: &admit.Config{
			MaxQueue: cfg.MaxQueue,
			MaxWidth: cfg.MaxWidth,
			MaxWait:  cfg.MaxWait,
		},
	})
	if err != nil {
		return nil, err
	}
	h.servers = append(h.servers, admSrv)
	h.admAddr = admAddr

	// Prewarm the connection pool so the profiles measure request service,
	// not a dial storm at first arrival.
	for i := 0; i < 64; i++ {
		c, err := wire.Dial(admAddr)
		if err != nil {
			return nil, err
		}
		h.putClient(c)
	}

	result := &LoadResult{
		Workload:    w.Name,
		N:           len(w.Items),
		Dim:         w.Dim,
		CapacityQPS: capacity,
		SLOMs:       float64(h.sloMs),
		MaxQueue:    cfg.MaxQueue,
		MaxWidth:    cfg.MaxWidth,
	}
	for _, p := range cfg.Profiles {
		run, err := h.runProfile(p, capacity, slo)
		if err != nil {
			return nil, fmt.Errorf("experiments: load profile %s: %w", p.Name, err)
		}
		result.Runs = append(result.Runs, run)
	}
	return result, nil
}

// calibrate measures the sequential per-query service time through the
// wire: a short warm-up (cold buffer pool), then a closed-loop pass over
// the query pool.
func (h *loadHarness) calibrate(addr string) (time.Duration, error) {
	client, err := wire.Dial(addr)
	if err != nil {
		return 0, err
	}
	defer client.Close()
	warm := len(h.specs) / 2
	for i := 0; i < warm; i++ {
		if _, _, err := client.Query(h.specs[i%len(h.specs)]); err != nil {
			return 0, err
		}
	}
	const measured = 128
	start := time.Now()
	for i := 0; i < measured; i++ {
		if _, _, err := client.Query(h.specs[i%len(h.specs)]); err != nil {
			return 0, err
		}
	}
	per := time.Since(start) / measured
	if per <= 0 {
		per = time.Microsecond
	}
	return per, nil
}

// arrivalOutcome is one open-loop request's classified result.
type arrivalOutcome struct {
	latency      time.Duration // client-observed round trip
	service      time.Duration // server-measured in-system time
	width        int
	admitted     bool
	shed         bool
	retryAfterOK bool
	identical    bool
	otherErr     bool
}

// runProfile offers arrivals at rate.RateXCap times the calibrated
// capacity, open loop: arrivals are launched on schedule regardless of how
// many requests are still in flight — exactly the regime admission control
// exists for.
func (h *loadHarness) runProfile(p LoadProfileSpec, capacity float64, slo time.Duration) (LoadRun, error) {
	rate := p.RateXCap * capacity
	if rate <= 0 {
		return LoadRun{}, fmt.Errorf("non-positive offered rate")
	}
	interval := time.Duration(float64(time.Second) / rate)
	outcomes := make([]arrivalOutcome, p.Arrivals)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < p.Arrivals; i++ {
		if d := time.Until(start.Add(time.Duration(i) * interval)); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outcomes[i] = h.oneRequest(i % len(h.specs))
		}(i)
	}
	wg.Wait()

	run := LoadRun{
		Profile:         p.Name,
		RateXCap:        p.RateXCap,
		Arrivals:        p.Arrivals,
		RetryAfterHints: true,
		Identical:       true,
	}
	var services, latencies []time.Duration
	var widthSum int64
	for _, o := range outcomes {
		switch {
		case o.admitted:
			run.Admitted++
			services = append(services, o.service)
			latencies = append(latencies, o.latency)
			widthSum += int64(o.width)
			if o.width > run.MaxWidth {
				run.MaxWidth = o.width
			}
			if !o.identical {
				run.Identical = false
			}
		case o.shed:
			run.Shed++
			if !o.retryAfterOK {
				run.RetryAfterHints = false
			}
		default:
			run.ErrorsOther++
		}
	}
	run.ShedRate = float64(run.Shed) / float64(p.Arrivals)
	if run.Admitted > 0 {
		sort.Slice(services, func(i, j int) bool { return services[i] < services[j] })
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		run.P50Ms = ms(percentile(services, 0.50))
		run.P95Ms = ms(percentile(services, 0.95))
		run.P99Ms = ms(percentile(services, 0.99))
		run.ClientP95Ms = ms(percentile(latencies, 0.95))
		run.AvgWidth = float64(widthSum) / float64(run.Admitted)
	}
	run.Stable = run.Admitted > 0 &&
		run.ErrorsOther == 0 &&
		run.RetryAfterHints &&
		run.P95Ms <= float64(slo.Milliseconds())
	if p.Name == "overload" {
		// The acceptance criterion for sustained overload: the server
		// sheds early rather than collapsing, and independent callers'
		// queries actually share blocks.
		run.Stable = run.Stable && run.Shed > 0 && run.AvgWidth > 1
	}
	return run, nil
}

// oneRequest sends one deadline-carrying single query and classifies the
// outcome. Connections are pooled; a transport failure discards the
// connection instead of returning it.
func (h *loadHarness) oneRequest(qi int) arrivalOutcome {
	client, err := h.getClient()
	if err != nil {
		return arrivalOutcome{otherErr: true}
	}
	req := wire.Request{Op: wire.OpQuery, Queries: []wire.QuerySpec{h.specs[qi]}, DeadlineMs: h.sloMs}
	start := time.Now()
	resp, err := client.DoContext(context.Background(), req)
	latency := time.Since(start)
	if err != nil {
		var se *wire.ServerError
		if errors.As(err, &se) {
			h.putClient(client) // structured response: connection is fine
			if se.Code == wire.CodeOverload {
				return arrivalOutcome{latency: latency, shed: true, retryAfterOK: se.RetryAfter > 0}
			}
			return arrivalOutcome{latency: latency, otherErr: true}
		}
		client.Close() //nolint:errcheck
		return arrivalOutcome{latency: latency, otherErr: true}
	}
	h.putClient(client)
	if len(resp.Answers) != 1 {
		return arrivalOutcome{latency: latency, otherErr: true}
	}
	return arrivalOutcome{
		latency:   latency,
		service:   time.Duration(resp.Stats.ServiceUs) * time.Microsecond,
		width:     resp.Stats.BatchWidth,
		admitted:  true,
		identical: sameWireAnswers([][]wire.Answer{h.ref[qi]}, resp.Answers),
	}
}

func (h *loadHarness) getClient() (*wire.Client, error) {
	select {
	case c := <-h.pool:
		return c, nil
	default:
		return wire.Dial(h.admAddr)
	}
}

func (h *loadHarness) putClient(c *wire.Client) {
	select {
	case h.pool <- c:
	default:
		c.Close() //nolint:errcheck
	}
}

// percentile reads the p-quantile from sorted latencies (nearest rank).
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Figure renders shed rate, achieved batch width and admitted p95 against
// the offered rate (as a multiple of calibrated capacity).
func (r *LoadResult) Figure() *report.Figure {
	fig := &report.Figure{
		Title:  fmt.Sprintf("Admission control under open-loop load (%s database, capacity %.0f qps, SLO %.0f ms)", r.Workload, r.CapacityQPS, r.SLOMs),
		XLabel: "offered rate (x capacity)",
		YLabel: "rate / width / ms",
	}
	var shed, width, p95 []float64
	for _, run := range r.Runs {
		fig.XVals = append(fig.XVals, run.RateXCap)
		shed = append(shed, run.ShedRate)
		width = append(width, run.AvgWidth)
		p95 = append(p95, run.P95Ms)
	}
	fig.AddSeries("shed rate", shed)      //nolint:errcheck // lengths match by construction
	fig.AddSeries("batch width", width)   //nolint:errcheck
	fig.AddSeries("admitted p95 ms", p95) //nolint:errcheck
	return fig
}

// WriteLoadJSON writes the result as an indented JSON document (the
// BENCH_load.json artifact).
func WriteLoadJSON(w io.Writer, result *LoadResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(result)
}

// WriteLoadJSONFile writes the artifact to path.
func WriteLoadJSONFile(path string, result *LoadResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteLoadJSON(f, result); err != nil {
		f.Close() //nolint:errcheck // write error takes precedence
		return err
	}
	return f.Close()
}
