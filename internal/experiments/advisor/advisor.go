// Package advisor evaluates the cost-advisor calibration loop end to
// end: per (engine, dim) a calibrated database records
// predicted-vs-observed work counters across a warmup of batches, then a
// judged phase compares the raw cost model's per-batch predictions
// against the calibrated ones on fresh batches the recorder has not
// seen. Two verdicts are the artifact's payload, both regression-gated
// by benchcompare: Improved — the calibrated mean absolute percentage
// error is strictly below the raw model's wherever the raw model left
// any error — and Identical — a calibrated database returned
// bit-identical answers and statistics to a plain one on every judged
// batch, the observational guarantee.
//
// The package sits outside internal/experiments because it exercises the
// public metricdb API (Options.Calibrate, DB.AdviseBatch): the root
// package's own benchmark suite imports internal/experiments, so the
// experiments package itself must not import metricdb back.
package advisor

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"reflect"

	"metricdb"
	"metricdb/internal/report"
	"metricdb/internal/vec"
)

// Result is one (engine, dim) calibration verdict.
type Result struct {
	Engine string `json:"engine"`
	Dim    int    `json:"dim"`
	// MAPERaw / MAPECalibrated are the mean absolute percentage errors of
	// the uncorrected and the calibrated cost model over the judged
	// batches, pooled across the dist_calcs and pages_read counters.
	MAPERaw        float64 `json:"mape_raw"`
	MAPECalibrated float64 `json:"mape_calibrated"`
	// Improved reports that calibration strictly shrank the pooled error —
	// or that the raw model was already exact (error below 1e-9), in which
	// case calibration must not have degraded it.
	Improved bool `json:"improved"`
	// Identical reports bit-identical answers and stats between the
	// calibrated database and a plain reference on every judged batch.
	Identical bool `json:"identical"`
	// Samples is the recorder's sample count after the run (warmup plus
	// judged batches).
	Samples int64 `json:"samples"`
}

// Sweep is the full calibration evaluation (the BENCH_advisor.json
// artifact).
type Sweep struct {
	N       int      `json:"n"`
	M       int      `json:"m"`
	K       int      `json:"k"`
	Warmup  int      `json:"warmup_batches"`
	Judged  int      `json:"judged_batches"`
	Dims    []int    `json:"dims"`
	Engines []string `json:"engines"`
	Results []Result `json:"results"`
}

const (
	batchM       = 8
	knnK         = 10
	WarmupRounds = 4
	JudgedRounds = 10
	// adviceSeed is the advisor seed used for both recording and judging,
	// so the judged predictions are exactly the predictions the calibrated
	// database recorded against.
	adviceSeed = 1
	// exactFloor is the error floor below which the raw model counts as
	// already exact: strict improvement is then impossible and calibration
	// is only required not to degrade it.
	exactFloor = 1e-9
)

func uniformItems(seed int64, n, dim int) []metricdb.Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]metricdb.Item, n)
	for i := range items {
		v := make(vec.Vector, dim)
		for j := range v {
			v[j] = rng.Float64()
		}
		items[i] = metricdb.Item{ID: metricdb.ItemID(i), Vec: v}
	}
	return items
}

func knnBatch(rng *rand.Rand, m, dim int) []metricdb.Query {
	queries := make([]metricdb.Query, m)
	for i := range queries {
		v := make(vec.Vector, dim)
		for j := range v {
			v[j] = rng.Float64()
		}
		queries[i] = metricdb.Query{ID: uint64(i), Vec: v, Type: metricdb.KNNQuery(knnK)}
	}
	return queries
}

// findEngine picks one engine's row from a ranking.
func findEngine(cands []metricdb.Candidate, engine string) (metricdb.Candidate, bool) {
	for _, c := range cands {
		if c.Engine == engine {
			return c, true
		}
	}
	return metricdb.Candidate{}, false
}

// relErr accumulates |predicted-observed|/observed pairs.
type relErr struct {
	sum float64
	n   int
}

func (e *relErr) add(predicted, observed int64) {
	if observed <= 0 {
		return
	}
	d := float64(predicted - observed)
	if d < 0 {
		d = -d
	}
	e.sum += d / float64(observed)
	e.n++
}

func (e *relErr) mean() float64 {
	if e.n == 0 {
		return 0
	}
	return e.sum / float64(e.n)
}

// Run evaluates the calibration loop for every engine at each
// dimensionality over n fixed-seed uniform items.
func Run(dims []int, n int) (*Sweep, error) {
	kinds := []metricdb.EngineKind{metricdb.EngineScan, metricdb.EngineXTree,
		metricdb.EngineVAFile, metricdb.EnginePivot, metricdb.EnginePMTree}
	sweep := &Sweep{N: n, M: batchM, K: knnK,
		Warmup: WarmupRounds, Judged: JudgedRounds, Dims: dims}
	for _, k := range kinds {
		sweep.Engines = append(sweep.Engines, string(k))
	}

	for _, dim := range dims {
		items := uniformItems(int64(17000+dim), n, dim)
		for _, kind := range kinds {
			res, err := run(kind, items, dim)
			if err != nil {
				return nil, fmt.Errorf("%s dim=%d: %w", kind, dim, err)
			}
			sweep.Results = append(sweep.Results, res)
		}
	}
	return sweep, nil
}

// run warms one calibrated database, then judges raw against calibrated
// predictions on fresh batches while checking the calibrated run stays
// bit-identical to a plain reference.
func run(kind metricdb.EngineKind, items []metricdb.Item, dim int) (Result, error) {
	calibrated, err := metricdb.Open(items, metricdb.Options{Engine: kind, Calibrate: true})
	if err != nil {
		return Result{}, err
	}
	plain, err := metricdb.Open(items, metricdb.Options{Engine: kind})
	if err != nil {
		return Result{}, err
	}
	res := Result{Engine: string(kind), Dim: dim, Identical: true}
	rng := rand.New(rand.NewSource(int64(19000 + 100*dim + len(string(kind)))))

	// Warmup: feed the recorder. The plain reference runs the same batches
	// so both databases see identical buffer histories.
	for i := 0; i < WarmupRounds; i++ {
		batch := knnBatch(rng, batchM, dim)
		if _, _, err := calibrated.NewBatch().QueryAll(batch); err != nil {
			return Result{}, err
		}
		if _, _, err := plain.NewBatch().QueryAll(batch); err != nil {
			return Result{}, err
		}
	}

	var rawErr, calErr relErr
	for i := 0; i < JudgedRounds; i++ {
		batch := knnBatch(rng, batchM, dim)
		advice, err := calibrated.AdviseBatch(batch, adviceSeed)
		if err != nil {
			return Result{}, err
		}
		raw, ok := findEngine(advice.Candidates, string(kind))
		if !ok {
			return Result{}, fmt.Errorf("engine %s missing from candidates", kind)
		}
		cal, ok := findEngine(advice.Calibrated, string(kind))
		if !ok {
			return Result{}, fmt.Errorf("engine %s missing from calibrated ranking", kind)
		}

		ca, cs, err := calibrated.NewBatch().QueryAll(batch)
		if err != nil {
			return Result{}, err
		}
		pa, ps, err := plain.NewBatch().QueryAll(batch)
		if err != nil {
			return Result{}, err
		}
		if cs != ps || !reflect.DeepEqual(ca, pa) {
			res.Identical = false
		}

		rawErr.add(raw.DistCalcs, cs.DistCalcs)
		rawErr.add(raw.PagesRead, cs.PagesRead)
		calErr.add(cal.DistCalcs, cs.DistCalcs)
		calErr.add(cal.PagesRead, cs.PagesRead)
	}

	res.MAPERaw = rawErr.mean()
	res.MAPECalibrated = calErr.mean()
	res.Improved = res.MAPECalibrated < res.MAPERaw ||
		(res.MAPERaw < exactFloor && res.MAPECalibrated < exactFloor)
	if rec := calibrated.Calibration(); rec != nil {
		res.Samples = rec.Samples()
	}
	return res, nil
}

// Figure renders the sweep as raw and calibrated prediction error per
// engine, one x position per dimensionality.
func (s *Sweep) Figure() *report.Figure {
	fig := &report.Figure{
		Title:  fmt.Sprintf("Advisor calibration: cost-model MAPE raw vs calibrated (n=%d, m=%d, k=%d)", s.N, s.M, s.K),
		XLabel: "dim",
		YLabel: "mean absolute percentage error",
	}
	for _, d := range s.Dims {
		fig.XVals = append(fig.XVals, float64(d))
	}
	series := map[string][]float64{}
	var order []string
	for _, r := range s.Results {
		for _, v := range []struct {
			name string
			val  float64
		}{
			{r.Engine + " raw", r.MAPERaw},
			{r.Engine + " calibrated", r.MAPECalibrated},
		} {
			if _, ok := series[v.name]; !ok {
				order = append(order, v.name)
			}
			series[v.name] = append(series[v.name], v.val)
		}
	}
	for _, name := range order {
		fig.AddSeries(name, series[name]) //nolint:errcheck // lengths match by construction
	}
	return fig
}

// WriteJSON writes the sweep as an indented JSON document.
func WriteJSON(w io.Writer, sweep *Sweep) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sweep)
}

// WriteJSONFile writes the BENCH_advisor.json artifact to path.
func WriteJSONFile(path string, sweep *Sweep) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteJSON(f, sweep); err != nil {
		f.Close() //nolint:errcheck // write error takes precedence
		return err
	}
	return f.Close()
}
