package advisor

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestRunSmoke runs a miniature calibration evaluation and checks the
// invariants the committed artifact rests on: calibration stays strictly
// observational (bit-identical runs), it improves the cost model's
// prediction error for every engine, the recorder accumulated the
// expected sample count, and the JSON document round-trips.
func TestRunSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("advisor sweep skipped in -short")
	}
	sweep, err := Run([]int{4}, 1200)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(sweep.Results), len(sweep.Engines); got != want {
		t.Fatalf("%d results, want %d", got, want)
	}
	for _, r := range sweep.Results {
		if !r.Identical {
			t.Errorf("%s dim=%d: calibrated run diverged from the plain reference", r.Engine, r.Dim)
		}
		if !r.Improved {
			t.Errorf("%s dim=%d: calibration did not improve (MAPE %.4f raw vs %.4f calibrated)",
				r.Engine, r.Dim, r.MAPERaw, r.MAPECalibrated)
		}
		if want := int64(WarmupRounds + JudgedRounds); r.Samples != want {
			t.Errorf("%s dim=%d: %d recorder samples, want %d", r.Engine, r.Dim, r.Samples, want)
		}
	}

	var buf bytes.Buffer
	if err := WriteJSON(&buf, sweep); err != nil {
		t.Fatal(err)
	}
	var back Sweep
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != len(sweep.Results) {
		t.Errorf("round-trip lost results: %d vs %d", len(back.Results), len(sweep.Results))
	}
	if fig := sweep.Figure(); len(fig.Series) != 2*len(sweep.Engines) || len(fig.XVals) != 1 {
		t.Errorf("figure shape: %d series, %d x-values", len(fig.Series), len(fig.XVals))
	}
}
