package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"time"

	"metricdb/internal/fault"
	"metricdb/internal/msq"
	"metricdb/internal/obs"
	"metricdb/internal/parallel"
	"metricdb/internal/query"
	"metricdb/internal/report"
	"metricdb/internal/scan"
	"metricdb/internal/store"
	"metricdb/internal/vec"
	"metricdb/internal/wire"
)

// The distobs experiment exercises the distributed observability layer
// end to end: a coordinator fans one m-query batch out to s wire servers
// on loopback TCP, each with its own node-labelled tracer. One server
// sits on a transient disk fault, so the first attempt fails and the
// coordinator's retry appears as a sibling attempt span. The experiment
// asserts the tentpole contracts — a single stitched cross-server trace
// with one child span per server call (retries included), and
// traced-vs-untraced bit-identity of answers and counters at every
// pipeline width — and records the per-query EXPLAIN width-stability
// check. The results are the BENCH_distobs.json artifact.

// DistObsRun is one (width, traced?) comparison over the wire cluster.
type DistObsRun struct {
	Width   int     `json:"width"`
	Seconds float64 `json:"seconds"`
	// Identical reports whether the traced run's merged answers and
	// aggregated counters matched the untraced run exactly (the
	// strictly-observational contract across the wire).
	Identical bool `json:"identical"`
	// Traces is the number of distinct trace IDs on the coordinator
	// tracer after the run; the tentpole contract is exactly 1.
	Traces int `json:"traces"`
	// ServerCalls counts server_call child spans under the root —
	// servers + retried attempts.
	ServerCalls int `json:"server_calls"`
	// Retries counts attempt > 1 among those (the fault-induced retry).
	Retries int `json:"retries"`
	// RemoteNodes is the number of distinct non-coordinator node labels
	// among the stitched spans — servers whose subtrees were imported.
	RemoteNodes int `json:"remote_nodes"`
	// Spans is the total span count of the stitched trace.
	Spans int `json:"spans"`
	// PagesRead/DistCalcs summarize the traced run's aggregated work.
	PagesRead int64 `json:"pages_read"`
	DistCalcs int64 `json:"dist_calcs"`
}

// DistObsExplain is the per-query EXPLAIN profile summary at one width.
type DistObsExplain struct {
	Width int `json:"width"`
	// PagesVisited, Offered (DistCalcs + avoided by either lemma) and
	// Answers per query position — the width-invariant profile columns.
	PagesVisited []int64 `json:"pages_visited"`
	Offered      []int64 `json:"offered"`
	Answers      []int   `json:"answers"`
	// Stable reports whether all three columns matched the first width.
	Stable bool `json:"stable"`
}

// DistObsProfile is the distobs experiment's result set.
type DistObsProfile struct {
	Workload string           `json:"workload"`
	M        int              `json:"m"`
	Servers  int              `json:"servers"`
	Widths   []int            `json:"widths"`
	Runs     []DistObsRun     `json:"runs"`
	Explain  []DistObsExplain `json:"explain"`
}

// distObsCluster is one wire cluster: s servers on loopback listeners and
// a coordinator over them. Server 0 sits on a transient fault (one
// injected read failure, then the disk behaves), so the first call to it
// fails and the coordinator's retry succeeds.
type distObsCluster struct {
	coord     *wire.Coordinator
	coordTr   *obs.Tracer
	servers   []*wire.Server
	listeners []net.Listener
}

func (c *distObsCluster) close() {
	for _, s := range c.servers {
		s.Close() //nolint:errcheck
	}
}

// newDistObsCluster partitions the workload round-robin over s wire
// servers at the given pipeline width. With traced true every process
// gets a node-labelled tracer and the coordinator propagates trace
// contexts; with traced false no tracer exists anywhere (the reference
// configuration).
func newDistObsCluster(w Workload, s, width int, traced bool) (*distObsCluster, error) {
	parts, err := parallel.Decluster(w.Items, s, parallel.RoundRobin, 0)
	if err != nil {
		return nil, err
	}
	capacity := store.PageCapacityForBlockSize(32768, w.Dim)
	c := &distObsCluster{}
	var serverTrs []*obs.Tracer
	addrs := make([]string, s)
	for i, part := range parts {
		var wrap func(store.PageSource) (store.PageSource, error)
		if i == 0 {
			wrap = func(src store.PageSource) (store.PageSource, error) {
				return fault.Wrap(src, fault.Config{Seed: 1, ErrProb: 1, MaxFaults: 1})
			}
		}
		pages := (len(part) + capacity - 1) / capacity
		eng, err := scan.NewWithConfig(part, scan.Config{
			PageCapacity: capacity,
			BufferPages:  store.DefaultBufferPages(pages),
			WrapDisk:     wrap,
		})
		if err != nil {
			c.close()
			return nil, err
		}
		proc, err := msq.New(eng, vec.Euclidean{}, msq.Options{Concurrency: width})
		if err != nil {
			c.close()
			return nil, err
		}
		cfg := wire.ServerConfig{WriteTimeout: 10 * time.Second}
		if traced {
			tr := obs.New(obs.Config{SlowQueryThreshold: -1, Node: fmt.Sprintf("srv%d", i)})
			proc = proc.WithTracer(tr)
			cfg.Tracer = tr
			serverTrs = append(serverTrs, obs.New(obs.Config{SlowQueryThreshold: -1}))
		}
		srv, err := wire.NewServerWithConfig(proc, cfg)
		if err != nil {
			c.close()
			return nil, err
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			c.close()
			return nil, err
		}
		go srv.Serve(lis) //nolint:errcheck
		c.servers = append(c.servers, srv)
		c.listeners = append(c.listeners, lis)
		addrs[i] = lis.Addr().String()
	}
	ccfg := wire.CoordinatorConfig{
		Addrs:   addrs,
		Retries: 2,
		Timeout: 30 * time.Second,
	}
	if traced {
		c.coordTr = obs.New(obs.Config{SlowQueryThreshold: -1, Node: "coordinator"})
		ccfg.Tracer = c.coordTr
		ccfg.ServerTracers = serverTrs
	}
	coord, err := wire.NewCoordinator(ccfg)
	if err != nil {
		c.close()
		return nil, err
	}
	c.coord = coord
	return c, nil
}

// toSpecs converts a query batch to wire form. KNN ranges are +Inf, which
// JSON cannot carry, so each spec only states the fields its kind uses.
func toSpecs(queries []msq.Query) []wire.QuerySpec {
	specs := make([]wire.QuerySpec, len(queries))
	for i, q := range queries {
		spec := wire.QuerySpec{ID: q.ID, Vector: []float64(q.Vec), Kind: q.Type.Kind.String()}
		switch q.Type.Kind {
		case query.Range:
			spec.Range = q.Type.Range
		case query.KNN:
			spec.K = q.Type.Cardinality
		case query.BoundedKNN:
			spec.Range = q.Type.Range
			spec.K = q.Type.Cardinality
		}
		specs[i] = spec
	}
	return specs
}

func sameWireAnswers(a, b [][]wire.Answer) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j].ID != b[i][j].ID || a[i][j].Dist != b[i][j].Dist {
				return false
			}
		}
	}
	return true
}

// RunDistObs runs the m-query batch over s wire servers at every width,
// comparing each traced run against an untraced run of an identically
// built (and identically faulted) cluster, then checks the EXPLAIN
// profile's width stability on a single-node processor.
func RunDistObs(w Workload, s int, widths []int, m int) (*DistObsProfile, error) {
	queries, err := w.Queries(w.querySeed()+29, m)
	if err != nil {
		return nil, err
	}
	specs := toSpecs(queries)
	profile := &DistObsProfile{Workload: w.Name, M: m, Servers: s, Widths: widths}

	for _, width := range widths {
		run := func(traced bool) ([][]wire.Answer, wire.Stats, *obs.Tracer, float64, error) {
			c, err := newDistObsCluster(w, s, width, traced)
			if err != nil {
				return nil, wire.Stats{}, nil, 0, err
			}
			defer c.close()
			start := time.Now()
			answers, stats, err := c.coord.MultiAllContext(context.Background(), specs)
			return answers, stats, c.coordTr, time.Since(start).Seconds(), err
		}

		refAnswers, refStats, _, _, err := run(false)
		if err != nil {
			return nil, fmt.Errorf("experiments: distobs width %d untraced: %w", width, err)
		}
		answers, stats, tr, elapsed, err := run(true)
		if err != nil {
			return nil, fmt.Errorf("experiments: distobs width %d traced: %w", width, err)
		}

		res := DistObsRun{
			Width:   width,
			Seconds: elapsed,
			Identical: sameWireAnswers(refAnswers, answers) &&
				stats.PagesRead == refStats.PagesRead &&
				stats.DistCalcs == refStats.DistCalcs &&
				stats.Avoided == refStats.Avoided &&
				stats.AvoidTries == refStats.AvoidTries,
			PagesRead: stats.PagesRead,
			DistCalcs: stats.DistCalcs,
		}
		ids := tr.TraceIDs()
		res.Traces = len(ids)
		if len(ids) > 0 {
			root := tr.Trace(ids[0])
			nodes := map[string]bool{}
			var walk func(n *obs.TraceNode)
			walk = func(n *obs.TraceNode) {
				res.Spans++
				if n.Name == "server_call" {
					res.ServerCalls++
					if n.Attempt > 1 {
						res.Retries++
					}
				}
				if n.Node != "" && n.Node != "coordinator" {
					nodes[n.Node] = true
				}
				for _, ch := range n.Children {
					walk(ch)
				}
			}
			walk(root)
			res.RemoteNodes = len(nodes)
		}
		profile.Runs = append(profile.Runs, res)
	}

	// EXPLAIN width stability on one node over the full workload: the
	// profile columns that the width-stability contract guarantees —
	// pages visited, the offered set (calculated + avoided pairs), and
	// answer counts per query — must not move with the pipeline width.
	for _, width := range widths {
		eng, err := ScanMaker(w).Make()
		if err != nil {
			return nil, err
		}
		proc, err := msq.New(eng, vec.Euclidean{}, msq.Options{Concurrency: width})
		if err != nil {
			return nil, err
		}
		ex, err := proc.ExplainContext(context.Background(), queries)
		if err != nil {
			return nil, fmt.Errorf("experiments: distobs explain width %d: %w", width, err)
		}
		de := DistObsExplain{Width: width, Stable: true}
		for _, p := range ex.Queries {
			de.PagesVisited = append(de.PagesVisited, p.PagesVisited)
			de.Offered = append(de.Offered, p.Offered())
			de.Answers = append(de.Answers, p.Answers)
		}
		if len(profile.Explain) > 0 {
			first := profile.Explain[0]
			for i := range de.PagesVisited {
				if de.PagesVisited[i] != first.PagesVisited[i] ||
					de.Offered[i] != first.Offered[i] ||
					de.Answers[i] != first.Answers[i] {
					de.Stable = false
				}
			}
		}
		profile.Explain = append(profile.Explain, de)
	}
	return profile, nil
}

// Figure renders the per-width traced wall clock and the trace shape: how
// many server calls (including retries) the stitched trace recorded.
func (p *DistObsProfile) Figure() *report.Figure {
	fig := &report.Figure{
		Title:  fmt.Sprintf("Distributed tracing over %d wire servers (%s database, m=%d)", p.Servers, p.Workload, p.M),
		XLabel: "pipeline width",
		YLabel: "count / seconds",
	}
	var secs, calls, retries []float64
	for _, r := range p.Runs {
		fig.XVals = append(fig.XVals, float64(r.Width))
		secs = append(secs, r.Seconds)
		calls = append(calls, float64(r.ServerCalls))
		retries = append(retries, float64(r.Retries))
	}
	fig.AddSeries("seconds", secs)       //nolint:errcheck // lengths match by construction
	fig.AddSeries("server calls", calls) //nolint:errcheck
	fig.AddSeries("retries", retries)    //nolint:errcheck
	return fig
}

// WriteDistObsJSON writes the profiles as an indented JSON document (the
// BENCH_distobs.json artifact).
func WriteDistObsJSON(w io.Writer, profiles []*DistObsProfile) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(profiles)
}

// WriteDistObsJSONFile writes the artifact to path.
func WriteDistObsJSONFile(path string, profiles []*DistObsProfile) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteDistObsJSON(f, profiles); err != nil {
		f.Close() //nolint:errcheck // write error takes precedence
		return err
	}
	return f.Close()
}
