package experiments

import (
	"fmt"

	"metricdb/internal/cost"
	"metricdb/internal/parallel"
	"metricdb/internal/report"
	"metricdb/internal/store"
)

// ParallelSweep holds the measurements behind Figures 11 and 12 for one
// workload and one engine kind.
type ParallelSweep struct {
	Workload     string
	Engine       string
	ServerCounts []int
	// PerQuerySeq is the per-query priced cost of sequential multiple
	// queries (s = 1, m = BaseM) — Figure 11's baseline.
	PerQuerySeq float64
	// PerQuerySingle is the per-query priced cost of sequential single
	// queries (s = 1, m = 1) — Figure 12's baseline.
	PerQuerySingle float64
	// PerQueryParallel[i] is the per-query latency cost with
	// ServerCounts[i] servers and block size BaseM·s: the slowest
	// server's priced cost divided by the number of queries.
	PerQueryParallel []float64
}

// RunParallelSweep reproduces the §6.4 setting: m = BaseM multiple k-NN
// queries on a single server as baseline, then s servers with m scaled to
// BaseM·s (the extra memory of s machines buffers s-times the answers).
// The per-query parallel cost follows the shared-nothing latency model:
// all servers work concurrently, so the slowest server determines the
// elapsed time; inter-server communication is negligible (§5.3).
func RunParallelSweep(w Workload, sc Scale, engineKind parallel.EngineKind, model cost.Model) (*ParallelSweep, error) {
	kindName := "scan"
	if engineKind == parallel.XTreeEngine {
		kindName = "xtree"
	}
	sw := &ParallelSweep{Workload: w.Name, Engine: kindName, ServerCounts: sc.ServerCounts}

	maxS := 0
	for _, s := range sc.ServerCounts {
		if s > maxS {
			maxS = s
		}
	}
	queries, err := w.Queries(w.querySeed()+7, sc.BaseM*maxS)
	if err != nil {
		return nil, err
	}

	// Sequential baselines on the equivalent single-server engine.
	var mk EngineMaker
	if engineKind == parallel.ScanEngine {
		mk = ScanMaker(w)
	} else {
		mk = XTreeMaker(w)
	}
	seq, err := runBlocks(mk, queries[:sc.BaseM], sc.BaseM, model)
	if err != nil {
		return nil, fmt.Errorf("experiments: sequential multi baseline: %w", err)
	}
	sw.PerQuerySeq = seq.CostPerQuery()
	single, err := runBlocks(mk, queries[:sc.BaseM], 1, model)
	if err != nil {
		return nil, fmt.Errorf("experiments: sequential single baseline: %w", err)
	}
	sw.PerQuerySingle = single.CostPerQuery()

	capacity := store.PageCapacityForBlockSize(32768, w.Dim)
	for _, s := range sc.ServerCounts {
		cluster, err := parallel.New(w.Items, parallel.Config{
			Servers:      s,
			Strategy:     parallel.RoundRobin,
			Engine:       engineKind,
			Dim:          w.Dim,
			PageCapacity: capacity,
			BufferPages:  -1,
		})
		if err != nil {
			return nil, err
		}
		block := queries[:sc.BaseM*s]
		_, rep, err := cluster.MultiQueryAll(block)
		if err != nil {
			return nil, fmt.Errorf("experiments: parallel s=%d: %w", s, err)
		}
		// Latency view: the priced cost of the slowest server.
		var worst float64
		for _, srv := range rep.PerServer {
			c := model.Of(srv.Query, srv.IO).Total().Seconds()
			if c > worst {
				worst = c
			}
		}
		sw.PerQueryParallel = append(sw.PerQueryParallel, worst/float64(len(block)))
	}
	return sw, nil
}

// Fig11 is the parallel speed-up per similarity query: sequential multiple
// queries (s=1, m=BaseM) vs parallel multiple queries (s servers,
// m=BaseM·s).
func (p *ParallelSweep) Fig11() *report.Figure {
	f := &report.Figure{
		Title:  fmt.Sprintf("Figure 11: parallelization speed-up wrt s (%s database, %s)", p.Workload, p.Engine),
		XLabel: "s",
		YLabel: "speed-up vs sequential multi-query",
		XVals:  intsToFloats(p.ServerCounts),
	}
	y := make([]float64, len(p.PerQueryParallel))
	for i, c := range p.PerQueryParallel {
		y[i] = p.PerQuerySeq / c
	}
	_ = f.AddSeries(p.Engine, y)
	return f
}

// Fig12 is the overall speed-up: parallel multiple queries vs sequential
// processing of single similarity queries — the combined effect of the
// multi-query transformation and parallelization.
func (p *ParallelSweep) Fig12() *report.Figure {
	f := &report.Figure{
		Title:  fmt.Sprintf("Figure 12: overall speed-up wrt s (%s database, %s)", p.Workload, p.Engine),
		XLabel: "s",
		YLabel: "speed-up vs sequential single queries",
		XVals:  intsToFloats(p.ServerCounts),
	}
	y := make([]float64, len(p.PerQueryParallel))
	for i, c := range p.PerQueryParallel {
		y[i] = p.PerQuerySingle / c
	}
	_ = f.AddSeries(p.Engine, y)
	return f
}

// MergeFigures combines same-x figures into one (e.g. the scan and X-tree
// series of Figure 11 on one dataset).
func MergeFigures(title string, figs ...*report.Figure) (*report.Figure, error) {
	if len(figs) == 0 {
		return nil, fmt.Errorf("experiments: nothing to merge")
	}
	out := &report.Figure{
		Title:  title,
		XLabel: figs[0].XLabel,
		YLabel: figs[0].YLabel,
		XVals:  figs[0].XVals,
	}
	for _, f := range figs {
		if len(f.XVals) != len(out.XVals) {
			return nil, fmt.Errorf("experiments: figure %q has mismatched x-axis", f.Title)
		}
		for _, s := range f.Series {
			if err := out.AddSeries(s.Name, s.Y); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}
