package experiments

import (
	"fmt"

	"metricdb/internal/fault"
	"metricdb/internal/parallel"
	"metricdb/internal/query"
	"metricdb/internal/report"
	"metricdb/internal/store"
)

// ChaosResult measures degraded-mode query processing: a shared-nothing
// cluster keeps answering while an increasing number of its servers sit on
// failing disks. Coverage is the partitions-answered fraction reported by
// the cluster; recall is the fraction of the fault-free answers that the
// degraded run still returned. Range answers are a sound subset of the
// fault-free result; k-NN answers are bounded-k-NN answers over the
// surviving partitions, so they can include items beyond the global top-k
// but never at a better rank-wise distance — both invariants are asserted
// while the experiment runs.
type ChaosResult struct {
	Workload string
	Servers  int
	// FailedServers is the x-axis: how many of the s servers fail.
	FailedServers []int
	Coverage      []float64
	Recall        []float64
}

// RunChaos declusters the workload over s servers and, for every failure
// count f = 0..s-1, injects unrecoverable read faults into f servers and
// runs an m-query k-NN batch in degraded mode.
func RunChaos(w Workload, s, m int) (*ChaosResult, error) {
	queries, err := w.Queries(w.querySeed()+13, m)
	if err != nil {
		return nil, err
	}
	capacity := store.PageCapacityForBlockSize(32768, w.Dim)
	newCluster := func(failed int) (*parallel.Cluster, error) {
		return parallel.New(w.Items, parallel.Config{
			Servers:      s,
			Strategy:     parallel.RoundRobin,
			Engine:       parallel.ScanEngine,
			Dim:          w.Dim,
			PageCapacity: capacity,
			BufferPages:  0,
			Degrade:      true,
			Retries:      1,
			WrapDisk: func(server int, src store.PageSource) (store.PageSource, error) {
				if server >= failed {
					return src, nil
				}
				return fault.Wrap(src, fault.Config{Seed: int64(server), ErrProb: 1})
			},
		})
	}

	// Fault-free reference answers.
	ref, err := newCluster(0)
	if err != nil {
		return nil, err
	}
	want, _, err := ref.MultiQueryAll(queries)
	if err != nil {
		return nil, err
	}
	wantIDs := make([]map[store.ItemID]bool, len(want))
	totalWant := 0
	for i, l := range want {
		wantIDs[i] = make(map[store.ItemID]bool, l.Len())
		for _, a := range l.Answers() {
			wantIDs[i][a.ID] = true
		}
		totalWant += l.Len()
	}

	res := &ChaosResult{Workload: w.Name, Servers: s}
	for failed := 0; failed < s; failed++ {
		c, err := newCluster(failed)
		if err != nil {
			return nil, err
		}
		got, rep, err := c.MultiQueryAll(queries)
		if err != nil {
			return nil, fmt.Errorf("experiments: chaos f=%d: %w", failed, err)
		}
		kept := 0
		for i, l := range got {
			ga, wa := l.Answers(), want[i].Answers()
			if len(ga) > len(wa) {
				return nil, fmt.Errorf("experiments: chaos f=%d: query %d returned %d answers, fault-free %d (unsound degradation)", failed, i, len(ga), len(wa))
			}
			for j, a := range ga {
				if wantIDs[i][a.ID] {
					kept++
				}
				if queries[i].Type.Kind == query.Range && !wantIDs[i][a.ID] {
					return nil, fmt.Errorf("experiments: chaos f=%d: range answer %d of query %d not in fault-free result (unsound degradation)", failed, a.ID, i)
				}
				// k-NN over the surviving partitions can only be as good as
				// the global k-NN at every rank, never better.
				if a.Dist < wa[j].Dist-1e-9 {
					return nil, fmt.Errorf("experiments: chaos f=%d: query %d rank %d improved under faults (unsound degradation)", failed, i, j)
				}
			}
		}
		recall := 1.0
		if totalWant > 0 {
			recall = float64(kept) / float64(totalWant)
		}
		res.FailedServers = append(res.FailedServers, failed)
		res.Coverage = append(res.Coverage, rep.Coverage())
		res.Recall = append(res.Recall, recall)
	}
	return res, nil
}

// Figure renders coverage and recall against the number of failed servers.
func (c *ChaosResult) Figure() *report.Figure {
	f := &report.Figure{
		Title:  fmt.Sprintf("Chaos: degraded coverage and recall wrt failed servers (%s database, s=%d)", c.Workload, c.Servers),
		XLabel: "failed servers",
		YLabel: "fraction",
		XVals:  intsToFloats(c.FailedServers),
	}
	_ = f.AddSeries("coverage", c.Coverage)
	_ = f.AddSeries("recall", c.Recall)
	return f
}
