package experiments

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

// TestRunKernelsSmoke runs a miniature kernel sweep and checks the
// artifact's structural invariants: one result per (metric, dim, rate),
// sane timings, an observed abandon rate tracking the target, and a
// round-trippable JSON encoding.
func TestRunKernelsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timing loop too slow for -short")
	}
	dims := []int{4}
	rates := []float64{0, 0.95}
	sweep, err := RunKernels(dims, rates, 64)
	if err != nil {
		t.Fatal(err)
	}
	const nMetrics = 5
	if got, want := len(sweep.Results), nMetrics*len(dims)*len(rates); got != want {
		t.Fatalf("got %d results, want %d", got, want)
	}
	for _, r := range sweep.Results {
		if r.FullNsPerOp <= 0 || r.BoundedNsPerOp <= 0 || r.Speedup <= 0 {
			t.Fatalf("%s/d=%d/rate=%g: non-positive timing %+v", r.Metric, r.Dim, r.AbandonRate, r)
		}
		if math.Abs(r.ObservedAbandonRate-r.AbandonRate) > 0.1 {
			t.Fatalf("%s/d=%d: observed abandon rate %g far from target %g",
				r.Metric, r.Dim, r.ObservedAbandonRate, r.AbandonRate)
		}
	}
	var buf bytes.Buffer
	if err := WriteKernelsJSON(&buf, sweep); err != nil {
		t.Fatal(err)
	}
	var back KernelSweep
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != len(sweep.Results) {
		t.Fatalf("JSON round trip lost results: %d != %d", len(back.Results), len(sweep.Results))
	}
}
