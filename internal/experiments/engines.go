package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"

	"metricdb/internal/engines"
	"metricdb/internal/msq"
	"metricdb/internal/query"
	"metricdb/internal/report"
	"metricdb/internal/store"
	"metricdb/internal/vec"
)

// The engines experiment sweeps dimensionality × batch width × physical
// organization through the engine registry — every engine the factory can
// build, on one fixed-seed dataset per dimensionality — re-checking on the
// measured runs themselves that each engine answers bit-identically to the
// sequential scan at pipeline widths 1 and 8. The deterministic work
// counters (distance calculations, pages read) are the artifact's payload:
// they are what the cost advisor predicts, and the committed baseline turns
// "the pivot table prunes distance calculations the scan must perform"
// into a regression-gated fact (each pivot row's speedup field is the scan
// row's DistCalcs over that row's DistCalcs + PivotDistCalcs).

// EngineResult is one (dim, m, engine) measurement.
type EngineResult struct {
	Dim    int    `json:"dim"`
	M      int    `json:"m"`
	Engine string `json:"engine"`
	// DistCalcs and PagesRead are the deterministic work counters of the
	// sequential (width 1) cold run, judged by benchcompare.
	DistCalcs int64 `json:"dist_calcs"`
	PagesRead int64 `json:"pages_read"`
	// PivotDistCalcs are the per-query setup distances of the pivot-based
	// engines (informational; zero elsewhere).
	PivotDistCalcs int64 `json:"pivot_dist_calcs,omitempty"`
	// Speedup is the scan's DistCalcs over this engine's total distance
	// work (DistCalcs + PivotDistCalcs) at the same (dim, m): > 1 means
	// the engine's pruning paid for its setup. Scan rows are exactly 1.
	Speedup float64 `json:"speedup"`
	// Identical reports bit-identical answers to the scan at widths 1 and
	// 8 (exact float equality).
	Identical bool `json:"identical"`
	// NsPerQuery is warm-buffer wall time per query (machine-dependent;
	// not judged).
	NsPerQuery float64 `json:"ns_per_query"`
}

// EnginesSweep is the full engine comparison (the BENCH_engines.json
// artifact).
type EnginesSweep struct {
	N            int            `json:"n"`
	PageCapacity int            `json:"page_capacity"`
	Pivots       int            `json:"pivots"`
	Dims         []int          `json:"dims"`
	MValues      []int          `json:"m_values"`
	Engines      []string       `json:"engines"`
	Results      []EngineResult `json:"results"`
}

const (
	enginesCapacity = 64
	enginesPivots   = 8
	enginesK        = 10
)

func enginesQueries(rng *rand.Rand, m, dim int) []msq.Query {
	queries := make([]msq.Query, m)
	for i := range queries {
		v := make(vec.Vector, dim)
		for j := range v {
			v[j] = rng.Float64()
		}
		queries[i] = msq.Query{ID: uint64(i), Vec: v, Type: query.NewKNN(enginesK)}
	}
	return queries
}

// enginesRun evaluates the batch on a fresh engine (cold buffer, so the
// I/O counters of different engines are comparable) and returns answers
// and counters.
func enginesRun(kind engines.Kind, items []store.Item, dim, width int, queries []msq.Query) (blockRun, *msq.Processor, error) {
	eng, err := engines.Build(engines.Spec{
		Kind: kind, Items: items, Dim: dim,
		PageCapacity: enginesCapacity,
		BufferPages:  (len(items) + enginesCapacity - 1) / enginesCapacity,
		Pivots:       enginesPivots,
	})
	if err != nil {
		return blockRun{}, nil, err
	}
	proc, err := msq.New(eng, vec.Euclidean{}, msq.Options{Concurrency: width})
	if err != nil {
		return blockRun{}, nil, err
	}
	run, err := blockEval(proc, queries)
	return run, proc, err
}

// enginesIdentical is the strict answer contract: same IDs, bit-identical
// distances, in the same order.
func enginesIdentical(ref, got blockRun) bool {
	if len(ref.answers) != len(got.answers) {
		return false
	}
	for q := range ref.answers {
		if len(ref.answers[q]) != len(got.answers[q]) {
			return false
		}
		for i := range ref.answers[q] {
			if ref.answers[q][i] != got.answers[q][i] {
				return false
			}
		}
	}
	return true
}

// RunEngines sweeps dim × m × engine over n fixed-seed uniform items per
// dimensionality.
func RunEngines(dims, ms []int, n int) (*EnginesSweep, error) {
	kinds := []engines.Kind{engines.Scan, engines.XTree, engines.VAFile, engines.Pivot, engines.PMTree}
	sweep := &EnginesSweep{N: n, PageCapacity: enginesCapacity, Pivots: enginesPivots,
		Dims: dims, MValues: ms}
	for _, k := range kinds {
		sweep.Engines = append(sweep.Engines, string(k))
	}

	for _, dim := range dims {
		rng := rand.New(rand.NewSource(int64(11000 + dim)))
		items := blockItems(int64(13000+dim), n, dim)
		for _, m := range ms {
			queries := enginesQueries(rng, m, dim)
			var scanRef blockRun
			var scanDistCalcs int64
			for _, kind := range kinds {
				ref, proc, err := enginesRun(kind, items, dim, 1, queries)
				if err != nil {
					return nil, fmt.Errorf("%s dim=%d m=%d: %w", kind, dim, m, err)
				}
				if kind == engines.Scan {
					scanRef = ref
					scanDistCalcs = ref.stats.DistCalcs
				}
				res := EngineResult{Dim: dim, M: m, Engine: string(kind),
					DistCalcs:      ref.stats.DistCalcs,
					PagesRead:      ref.stats.PagesRead,
					PivotDistCalcs: ref.stats.PivotDistCalcs,
					Identical:      enginesIdentical(scanRef, ref),
				}
				if total := res.DistCalcs + res.PivotDistCalcs; total > 0 {
					res.Speedup = float64(scanDistCalcs) / float64(total)
				}
				wide, _, err := enginesRun(kind, items, dim, 8, queries)
				if err != nil {
					return nil, fmt.Errorf("%s dim=%d m=%d w=8: %w", kind, dim, m, err)
				}
				if !enginesIdentical(scanRef, wide) {
					res.Identical = false
				}

				// Timing reuses the sequential run's engine: its buffer now
				// holds every visited page, so the measurement is CPU work
				// plus buffer hits — engine against engine.
				elapsed, err := timeBatch(func() error {
					_, _, err := proc.NewSession().MultiQueryAll(queries)
					return err
				})
				if err != nil {
					return nil, err
				}
				res.NsPerQuery = float64(elapsed.Nanoseconds()) / float64(m)
				sweep.Results = append(sweep.Results, res)
			}
		}
	}
	return sweep, nil
}

// Figure renders the sweep as distance-work speedup over the scan against
// the batch width, one series per (engine, dim), scan omitted (identically
// 1).
func (s *EnginesSweep) Figure() *report.Figure {
	fig := &report.Figure{
		Title:  fmt.Sprintf("Engine distance-work speed-up wrt m (n=%d, k=%d)", s.N, enginesK),
		XLabel: "m (queries per batch)",
		YLabel: "scan DistCalcs over engine DistCalcs",
	}
	for _, m := range s.MValues {
		fig.XVals = append(fig.XVals, float64(m))
	}
	bySeries := map[string][]float64{}
	var order []string
	for _, r := range s.Results {
		if r.Engine == "scan" {
			continue
		}
		key := fmt.Sprintf("%s d=%d", r.Engine, r.Dim)
		if _, ok := bySeries[key]; !ok {
			order = append(order, key)
		}
		bySeries[key] = append(bySeries[key], r.Speedup)
	}
	for _, name := range order {
		fig.AddSeries(name, bySeries[name]) //nolint:errcheck // lengths match by construction
	}
	return fig
}

// WriteEnginesJSON writes the sweep as an indented JSON document.
func WriteEnginesJSON(w io.Writer, sweep *EnginesSweep) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sweep)
}

// WriteEnginesJSONFile writes the BENCH_engines.json artifact to path.
func WriteEnginesJSONFile(path string, sweep *EnginesSweep) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteEnginesJSON(f, sweep); err != nil {
		f.Close() //nolint:errcheck // write error takes precedence
		return err
	}
	return f.Close()
}
