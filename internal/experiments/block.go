package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"sort"
	"time"

	"metricdb/internal/msq"
	"metricdb/internal/query"
	"metricdb/internal/report"
	"metricdb/internal/scan"
	"metricdb/internal/store"
	"metricdb/internal/vec"
)

// The block experiment measures the columnar page layouts end to end: the
// wall-clock page-pass throughput of one m-query batch on the scan engine
// as (dimensionality × batch width × layout) varies, always re-checking
// the layout contracts on the measured runs themselves — SoA bit-identical
// to AoS in answers and counters at pipeline widths 1, 2 and 8, f32
// rank-identical within the rounding bound, quant bit-identical in answers
// and page reads with the three CPU disposals partitioning the AoS offered
// set. Avoidance is off: that is the regime where the row kernels engage
// (and the regime Figure 8 uses as its no-avoidance baseline), so the
// measurement isolates the layout effect from the lemmas. The results are
// the BENCH_block.json artifact.

// BlockResult is one (dim, m, layout) measurement.
type BlockResult struct {
	Dim    int    `json:"dim"`
	M      int    `json:"m"`
	Layout string `json:"layout"`
	// NsPerPair is wall time per (query, item) pair of the sequential
	// page pass (machine-dependent; not judged by benchcompare).
	NsPerPair float64 `json:"ns_per_pair"`
	// Speedup is the AoS row's NsPerPair over this row's: > 1 means the
	// layout beats AoS at this configuration. The AoS row itself is 1.
	Speedup float64 `json:"speedup"`
	// DistCalcs is the sequential run's deterministic kernel count.
	DistCalcs int64 `json:"dist_calcs"`
	// Identical reports the layout's correctness contract against the
	// sequential AoS reference, checked at widths 1, 2 and 8: answers
	// bit-identical (f32: same IDs within the rounding bound) and page
	// reads identical.
	Identical bool `json:"identical"`
	// FilteredFrac is the fraction of offered pairs the quantized filter
	// rejected (quant rows only).
	FilteredFrac float64 `json:"filtered_frac,omitempty"`
}

// BlockSweep is the full layout measurement set.
type BlockSweep struct {
	N            int           `json:"n"`
	PageCapacity int           `json:"page_capacity"`
	Dims         []int         `json:"dims"`
	MValues      []int         `json:"m_values"`
	Layouts      []string      `json:"layouts"`
	Results      []BlockResult `json:"results"`
}

const (
	blockCapacity = 256
	blockF32Bound = 1e-5
)

var blockWidths = []int{1, 2, 8}

// blockLayouts maps the sweep's layout axis onto processor layout and the
// sibling representations the engine materializes.
func blockLayouts(grid *vec.QuantGrid) []struct {
	name   string
	layout msq.Layout
	spec   store.ColumnSpec
} {
	return []struct {
		name   string
		layout msq.Layout
		spec   store.ColumnSpec
	}{
		{"aos", msq.LayoutAoS, store.ColumnSpec{}},
		{"soa", msq.LayoutSoA, store.ColumnSpec{Columnar: true}},
		{"f32", msq.LayoutF32, store.ColumnSpec{Columnar: true, F32: true}},
		{"quant", msq.LayoutQuant, store.ColumnSpec{Columnar: true, Quant: grid}},
	}
}

func blockItems(seed int64, n, dim int) []store.Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]store.Item, n)
	for i := range items {
		v := make(vec.Vector, dim)
		for j := range v {
			v[j] = rng.Float64()
		}
		items[i] = store.Item{ID: store.ItemID(i), Vec: v}
	}
	return items
}

// blockEps picks the range radius as a low quantile of sampled
// query-to-item distances, so each query answers a small fraction of the
// database and the pruning bound is finite from the first page — the
// regime the multi-query page pass actually runs in.
func blockEps(rng *rand.Rand, items []store.Item, dim int) float64 {
	const samples = 512
	m := vec.Euclidean{}
	q := make(vec.Vector, dim)
	ds := make([]float64, 0, samples)
	for i := 0; i < samples; i++ {
		for j := range q {
			q[j] = rng.Float64()
		}
		ds = append(ds, m.Distance(q, items[rng.Intn(len(items))].Vec))
	}
	sort.Float64s(ds)
	return ds[samples/100] // ~1% selectivity
}

func blockQueries(rng *rand.Rand, m, dim int, eps float64) []msq.Query {
	queries := make([]msq.Query, m)
	for i := range queries {
		v := make(vec.Vector, dim)
		for j := range v {
			v[j] = rng.Float64()
		}
		queries[i] = msq.Query{ID: uint64(i), Vec: v, Type: query.NewRange(eps)}
	}
	return queries
}

type blockRun struct {
	answers [][]query.Answer
	stats   msq.Stats
}

func blockEval(proc *msq.Processor, queries []msq.Query) (blockRun, error) {
	lists, stats, err := proc.NewSession().MultiQueryAll(queries)
	if err != nil {
		return blockRun{}, err
	}
	r := blockRun{stats: stats}
	for _, l := range lists {
		r.answers = append(r.answers, append([]query.Answer(nil), l.Answers()...))
	}
	return r, nil
}

// blockIdentical checks the layout's answer contract against the AoS
// reference: exact equality, except f32 which keeps the IDs and order but
// may round distances within blockF32Bound.
func blockIdentical(ref, got blockRun, f32 bool) bool {
	if len(ref.answers) != len(got.answers) {
		return false
	}
	for q := range ref.answers {
		if len(ref.answers[q]) != len(got.answers[q]) {
			return false
		}
		for i := range ref.answers[q] {
			a, b := ref.answers[q][i], got.answers[q][i]
			if a.ID != b.ID {
				return false
			}
			if f32 {
				if math.Abs(a.Dist-b.Dist) > blockF32Bound {
					return false
				}
			} else if a.Dist != b.Dist {
				return false
			}
		}
	}
	return got.stats.PagesRead == ref.stats.PagesRead && got.stats.PageVisits == ref.stats.PageVisits
}

// timeBatch reports the best wall time of fn over enough repetitions to
// dominate timer granularity.
func timeBatch(fn func() error) (time.Duration, error) {
	const minRuns, minDur = 3, 150 * time.Millisecond
	best := time.Duration(math.MaxInt64)
	total := time.Duration(0)
	for runs := 0; runs < minRuns || total < minDur; runs++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		elapsed := time.Since(start)
		total += elapsed
		if elapsed < best {
			best = elapsed
		}
	}
	return best, nil
}

// RunBlockLayouts sweeps dim × m × layout on the scan engine over n
// fixed-seed uniform items per dimensionality.
func RunBlockLayouts(dims, ms []int, n int) (*BlockSweep, error) {
	sweep := &BlockSweep{N: n, PageCapacity: blockCapacity, Dims: dims, MValues: ms,
		Layouts: []string{"aos", "soa", "f32", "quant"}}
	for _, dim := range dims {
		rng := rand.New(rand.NewSource(int64(9000 + dim)))
		items := blockItems(int64(7000+dim), n, dim)
		lo, hi := store.ItemCoordinateBounds(items, dim)
		grid, err := vec.BuildQuantGrid(8, lo, hi)
		if err != nil {
			return nil, err
		}
		eps := blockEps(rng, items, dim)
		layouts := blockLayouts(grid)

		for _, m := range ms {
			queries := blockQueries(rng, m, dim, eps)
			var aosRef blockRun
			var aosNsPerPair float64
			for _, lay := range layouts {
				// A fresh engine per evaluated run keeps the buffer cold,
				// so PagesRead of independent runs is comparable (the
				// convention of the differential harness).
				freshProc := func(width int) (*msq.Processor, error) {
					eng, err := scan.NewWithConfig(items, scan.Config{
						PageCapacity: blockCapacity,
						BufferPages:  (n + blockCapacity - 1) / blockCapacity,
						Columns:      lay.spec,
					})
					if err != nil {
						return nil, err
					}
					return msq.New(eng, vec.Euclidean{}, msq.Options{
						Avoidance: msq.AvoidOff, Concurrency: width, Layout: lay.layout})
				}

				proc, err := freshProc(1)
				if err != nil {
					return nil, err
				}
				ref, err := blockEval(proc, queries)
				if err != nil {
					return nil, err
				}
				res := BlockResult{Dim: dim, M: m, Layout: lay.name,
					DistCalcs: ref.stats.DistCalcs, Identical: true}
				if lay.name == "aos" {
					aosRef = ref
				}
				if !blockIdentical(aosRef, ref, lay.name == "f32") {
					res.Identical = false
				}
				for _, width := range blockWidths[1:] {
					wproc, err := freshProc(width)
					if err != nil {
						return nil, err
					}
					run, err := blockEval(wproc, queries)
					if err != nil {
						return nil, err
					}
					if !blockIdentical(aosRef, run, lay.name == "f32") {
						res.Identical = false
					}
				}
				if offered := ref.stats.DistCalcs + ref.stats.Avoided + ref.stats.QuantFiltered; offered > 0 {
					res.FilteredFrac = float64(ref.stats.QuantFiltered) / float64(offered)
				}
				if lay.name == "quant" &&
					ref.stats.DistCalcs+ref.stats.QuantFiltered != aosRef.stats.DistCalcs {
					res.Identical = false // disposals must partition the AoS offered set
				}

				// Timing reuses proc's engine: after the reference run its
				// buffer holds the whole dataset, so the measurement is the
				// pure CPU page pass, layout against layout.
				elapsed, err := timeBatch(func() error {
					_, _, err := proc.NewSession().MultiQueryAll(queries)
					return err
				})
				if err != nil {
					return nil, err
				}
				pairs := float64(n) * float64(m)
				res.NsPerPair = float64(elapsed.Nanoseconds()) / pairs
				if lay.name == "aos" {
					aosNsPerPair = res.NsPerPair
					res.Speedup = 1
				} else {
					res.Speedup = aosNsPerPair / res.NsPerPair
				}
				sweep.Results = append(sweep.Results, res)
			}
		}
	}
	return sweep, nil
}

// Figure renders the sweep as layout speedup over AoS against the batch
// width, one series per (layout, dim), AoS omitted (identically 1).
func (s *BlockSweep) Figure() *report.Figure {
	fig := &report.Figure{
		Title:  fmt.Sprintf("Columnar layout speed-up wrt m (scan, n=%d)", s.N),
		XLabel: "m (queries per batch)",
		YLabel: "AoS ns/pair over layout ns/pair",
	}
	for _, m := range s.MValues {
		fig.XVals = append(fig.XVals, float64(m))
	}
	bySeries := map[string][]float64{}
	var order []string
	for _, r := range s.Results {
		if r.Layout == "aos" {
			continue
		}
		key := fmt.Sprintf("%s d=%d", r.Layout, r.Dim)
		if _, ok := bySeries[key]; !ok {
			order = append(order, key)
		}
		bySeries[key] = append(bySeries[key], r.Speedup)
	}
	for _, name := range order {
		fig.AddSeries(name, bySeries[name]) //nolint:errcheck // lengths match by construction
	}
	return fig
}

// WriteBlockJSON writes the sweep as an indented JSON document (the
// BENCH_block.json artifact).
func WriteBlockJSON(w io.Writer, sweep *BlockSweep) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sweep)
}

// WriteBlockJSONFile writes the artifact to path.
func WriteBlockJSONFile(path string, sweep *BlockSweep) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBlockJSON(f, sweep); err != nil {
		f.Close() //nolint:errcheck // write error takes precedence
		return err
	}
	return f.Close()
}
