package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"metricdb/internal/msq"
	"metricdb/internal/query"
	"metricdb/internal/report"
	"metricdb/internal/scan"
	"metricdb/internal/store"
	"metricdb/internal/vec"
)

// The storage experiment measures the file-backed page store against the
// simulated disk it replaced, on the scan engine (whose I/O pattern —
// every page, in physical order — makes backends directly comparable).
// Each backend runs the same m-query batch twice over one page layout:
// cold (fresh engine, empty buffer, every page fetched from the backend)
// and warm (same engine again, with a buffer sized to hold the entire
// dataset, so the second batch is memory-resident). The cold/warm gap is
// the real price of persistence; the equivalence verdicts are what the
// benchcompare gate judges, because wall clocks are machine-dependent.

// StorageRun is one backend's measurement.
type StorageRun struct {
	Workload string `json:"workload"`
	// Backend is "sim" (the in-memory simulated disk), "pread"
	// (store.FileDisk issuing positional reads) or "mmap" (store.FileDisk
	// over a memory-mapped page file).
	Backend string `json:"backend"`
	// ColdSeconds and WarmSeconds are wall clocks of the two batch runs;
	// machine-dependent, not judged by benchcompare.
	ColdSeconds float64 `json:"cold_seconds"`
	WarmSeconds float64 `json:"warm_seconds"`
	// PagesRead and DistCalcs are the cold batch's deterministic work
	// counters, identical across backends when the store is equivalent.
	PagesRead int64 `json:"pages_read"`
	DistCalcs int64 `json:"dist_calcs"`
	// WarmDiskReads counts reads that reached the backend during the warm
	// batch; 0 proves the buffer made the run memory-resident.
	WarmDiskReads int64 `json:"warm_disk_reads"`
	// Preads and BytesRead are the file backends' real-I/O counters over
	// both runs (0 for sim; near 0 for warm-covered mmap fetches).
	Preads    int64 `json:"preads"`
	BytesRead int64 `json:"bytes_read"`
	// Identical reports whether answers, query statistics and disk I/O
	// statistics matched the sim reference bit for bit, cold and warm.
	Identical bool `json:"identical"`
}

// StorageResult is the whole experiment for one workload.
type StorageResult struct {
	Workload     string       `json:"workload"`
	M            int          `json:"m"`
	Pages        int          `json:"pages"`
	PageCapacity int          `json:"page_capacity"`
	Runs         []StorageRun `json:"runs"`
}

// storageObservation captures everything one batch run must agree on.
type storageObservation struct {
	answers []query.Answer
	stats   msq.Stats
	io      store.IOStats
}

// RunStorage builds one persistent dataset directory for w and measures
// the m-query batch on every backend. The sim backend runs first and is
// the reference for the equivalence verdicts.
func RunStorage(w Workload, m int) (*StorageResult, error) {
	queries, err := w.Queries(w.querySeed()+41, m)
	if err != nil {
		return nil, err
	}
	capacity := store.PageCapacityForBlockSize(32768, w.Dim)
	pages, err := store.Paginate(w.Items, capacity)
	if err != nil {
		return nil, err
	}
	lens := make([]int, len(pages))
	for i, p := range pages {
		lens[i] = len(p.Items)
	}

	dir, err := os.MkdirTemp("", "msq-storage-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir) //nolint:errcheck
	meta := store.DatasetMeta{Dim: w.Dim, PageCapacity: capacity,
		Attrs: map[string]string{"workload": w.Name}}
	if err := store.WriteDataset(dir, pages, meta, store.WriteOptions{NoSync: true}); err != nil {
		return nil, err
	}

	result := &StorageResult{Workload: w.Name, M: m, Pages: len(pages), PageCapacity: capacity}
	haveRef := false
	var refCold, refWarm storageObservation
	for _, backend := range []string{"sim", "pread", "mmap"} {
		var (
			src store.PageSource
			fd  *store.FileDisk
		)
		switch backend {
		case "sim":
			if src, err = store.NewDisk(pages); err != nil {
				return nil, err
			}
		default:
			if fd, err = store.OpenFileDisk(dir, store.FileDiskOptions{Mmap: backend == "mmap"}); err != nil {
				return nil, err
			}
			src = fd
		}
		// The buffer covers the whole dataset so the warm batch runs
		// memory-resident regardless of backend.
		buf, err := store.NewBuffer(len(pages))
		if err != nil {
			return nil, err
		}
		pager, err := store.NewPager(src, buf)
		if err != nil {
			return nil, err
		}
		eng, err := scan.NewStored(pager, len(w.Items), lens)
		if err != nil {
			return nil, err
		}
		proc, err := msq.New(eng, vec.Euclidean{}, msq.Options{})
		if err != nil {
			return nil, err
		}

		run := StorageRun{Workload: w.Name, Backend: backend, Identical: true}
		measure := func() (storageObservation, float64, error) {
			before := src.Stats()
			start := time.Now()
			lists, stats, err := proc.NewSession().MultiQueryAll(queries)
			if err != nil {
				return storageObservation{}, 0, err
			}
			elapsed := time.Since(start).Seconds()
			obs := storageObservation{stats: stats, io: diffIO(src.Stats(), before)}
			for _, l := range lists {
				obs.answers = append(obs.answers, l.Answers()...)
			}
			return obs, elapsed, nil
		}
		cold, coldSec, err := measure()
		if err != nil {
			return nil, fmt.Errorf("storage: %s cold: %w", backend, err)
		}
		warm, warmSec, err := measure()
		if err != nil {
			return nil, fmt.Errorf("storage: %s warm: %w", backend, err)
		}
		run.ColdSeconds, run.WarmSeconds = coldSec, warmSec
		run.PagesRead = cold.stats.PagesRead
		run.DistCalcs = cold.stats.DistCalcs
		run.WarmDiskReads = warm.io.Reads
		if fd != nil {
			st := fd.Storage()
			run.Preads, run.BytesRead = st.Preads, st.BytesRead
			if err := fd.Close(); err != nil {
				return nil, err
			}
		}
		if !haveRef {
			haveRef, refCold, refWarm = true, cold, warm
		} else {
			run.Identical = sameObservation(cold, refCold) && sameObservation(warm, refWarm)
		}
		result.Runs = append(result.Runs, run)
	}
	return result, nil
}

func sameObservation(a, b storageObservation) bool {
	return a.stats == b.stats && a.io == b.io && sameFlatAnswers(a.answers, b.answers)
}

// Figure renders cold and warm wall clocks per backend.
func (r *StorageResult) Figure() *report.Figure {
	fig := &report.Figure{
		Title:  fmt.Sprintf("Persistent page store: cold vs warm batch (%s database, m=%d, %d pages)", r.Workload, r.M, r.Pages),
		XLabel: "backend (0=sim, 1=pread, 2=mmap)",
		YLabel: "batch wall clock (ms)",
	}
	var cold, warm []float64
	for i, run := range r.Runs {
		fig.XVals = append(fig.XVals, float64(i))
		cold = append(cold, run.ColdSeconds*1000)
		warm = append(warm, run.WarmSeconds*1000)
	}
	fig.AddSeries("cold", cold) //nolint:errcheck // lengths match by construction
	fig.AddSeries("warm", warm) //nolint:errcheck // lengths match by construction
	return fig
}

// WriteStorageJSON writes the results as an indented JSON document (the
// BENCH_storage.json artifact).
func WriteStorageJSON(w io.Writer, results []*StorageResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// WriteStorageJSONFile writes the artifact to path.
func WriteStorageJSONFile(path string, results []*StorageResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteStorageJSON(f, results); err != nil {
		f.Close() //nolint:errcheck // write error takes precedence
		return err
	}
	return f.Close()
}
