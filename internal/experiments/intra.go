package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"metricdb/internal/msq"
	"metricdb/internal/query"
	"metricdb/internal/report"
	"metricdb/internal/vec"
)

// The intra experiment measures the intra-server pipeline of internal/msq:
// wall-clock speedup of a multiple-similarity-query batch as the pipeline
// width grows, with the differential invariants (identical answers and
// identical page reads at every width) re-checked on the measured runs
// themselves. It is not a paper figure — the paper parallelizes across
// shared-nothing servers only — but quantifies the ROADMAP's "fast as the
// hardware allows" goal within one server.

// IntraResult is one (engine, width) measurement of an intra sweep.
type IntraResult struct {
	Workload  string  `json:"workload"`
	Engine    string  `json:"engine"`
	Width     int     `json:"width"`
	Seconds   float64 `json:"seconds"`
	Speedup   float64 `json:"speedup"` // wall-clock of width 1 over this width
	PagesRead int64   `json:"pages_read"`
	DistCalcs int64   `json:"dist_calcs"`
	// PartialAbandoned is the subset of DistCalcs the bounded kernels
	// resolved early (partial result already beyond the pruning bound).
	PartialAbandoned int64 `json:"partial_abandoned"`
	// Identical reports whether answers and page reads matched the
	// width-1 reference exactly; false flags a determinism regression.
	Identical bool `json:"identical"`
}

// IntraSweep is one workload's intra-server parallelism measurement.
type IntraSweep struct {
	Workload string        `json:"workload"`
	M        int           `json:"m"`
	Widths   []int         `json:"widths"`
	Results  []IntraResult `json:"results"`
}

// RunIntra sweeps the pipeline width over each engine for one m-query
// batch of w's workload. Every width runs the same batch on a freshly
// reset engine; the width-1 run is the reference the others are checked
// against.
func RunIntra(w Workload, widths []int, m int) (*IntraSweep, error) {
	queries, err := w.Queries(w.querySeed(), m)
	if err != nil {
		return nil, err
	}
	sweep := &IntraSweep{Workload: w.Name, M: m, Widths: widths}
	for _, maker := range []EngineMaker{ScanMaker(w), XTreeMaker(w)} {
		var ref []query.Answer
		var refPages int64
		for _, width := range widths {
			eng, err := maker.Make()
			if err != nil {
				return nil, err
			}
			proc, err := msq.New(eng, vec.Euclidean{}, msq.Options{Concurrency: width})
			if err != nil {
				return nil, err
			}
			start := time.Now()
			lists, stats, err := proc.NewSession().MultiQueryAll(queries)
			if err != nil {
				return nil, err
			}
			elapsed := time.Since(start).Seconds()

			var flat []query.Answer
			for _, l := range lists {
				flat = append(flat, l.Answers()...)
			}
			res := IntraResult{
				Workload:         w.Name,
				Engine:           maker.Name,
				Width:            width,
				Seconds:          elapsed,
				PagesRead:        stats.PagesRead,
				DistCalcs:        stats.DistCalcs,
				PartialAbandoned: stats.PartialAbandoned,
				Identical:        true,
			}
			if width == widths[0] {
				ref, refPages = flat, stats.PagesRead
				res.Speedup = 1
			} else {
				res.Speedup = sweep.resultFor(maker.Name, widths[0]).Seconds / elapsed
				res.Identical = stats.PagesRead == refPages && sameFlatAnswers(ref, flat)
			}
			sweep.Results = append(sweep.Results, res)
		}
	}
	return sweep, nil
}

func (s *IntraSweep) resultFor(engine string, width int) IntraResult {
	for _, r := range s.Results {
		if r.Engine == engine && r.Width == width {
			return r
		}
	}
	return IntraResult{Seconds: 1}
}

func sameFlatAnswers(a, b []query.Answer) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Dist != b[i].Dist {
			return false
		}
	}
	return true
}

// Figure renders the sweep as speedup-vs-width curves, one series per
// engine.
func (s *IntraSweep) Figure() *report.Figure {
	fig := &report.Figure{
		Title:  fmt.Sprintf("Intra-server speed-up wrt pipeline width (%s database, m=%d)", s.Workload, s.M),
		XLabel: "pipeline width (goroutines)",
		YLabel: "speed-up over sequential",
	}
	for _, x := range s.Widths {
		fig.XVals = append(fig.XVals, float64(x))
	}
	byEngine := map[string][]float64{}
	var order []string
	for _, r := range s.Results {
		if _, ok := byEngine[r.Engine]; !ok {
			order = append(order, r.Engine)
		}
		byEngine[r.Engine] = append(byEngine[r.Engine], r.Speedup)
	}
	for _, name := range order {
		fig.AddSeries(name, byEngine[name]) //nolint:errcheck // lengths match by construction
	}
	return fig
}

// WriteIntraJSON writes the sweeps as an indented JSON document (the
// BENCH_parallel_intra.json artifact).
func WriteIntraJSON(w io.Writer, sweeps []*IntraSweep) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sweeps)
}

// WriteIntraJSONFile writes the artifact to path.
func WriteIntraJSONFile(path string, sweeps []*IntraSweep) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteIntraJSON(f, sweeps); err != nil {
		f.Close() //nolint:errcheck // write error takes precedence
		return err
	}
	return f.Close()
}
