package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"metricdb/internal/obs"
)

func TestRunObs(t *testing.T) {
	widths := []int{1, 2}
	profile, err := RunObs(tinyWorkload(t), widths, 8)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * len(widths); len(profile.Results) != want { // scan + xtree
		t.Fatalf("got %d results, want %d", len(profile.Results), want)
	}
	for _, r := range profile.Results {
		if !r.Identical {
			t.Errorf("%s width %d: traced run diverged from untraced reference", r.Engine, r.Width)
		}
		if r.DistCalcs == 0 || r.PagesRead == 0 {
			t.Errorf("%s width %d: empty counters %+v", r.Engine, r.Width, r)
		}
		phases := map[string]ObsPhase{}
		for _, ph := range r.Phases {
			phases[ph.Phase] = ph
			if ph.Count <= 0 || ph.TotalNs < 0 {
				t.Errorf("%s width %d: degenerate phase %+v", r.Engine, r.Width, ph)
			}
		}
		for _, want := range []string{
			obs.PhaseKernel.String(), obs.PhasePageWait.String(), obs.PhaseMatrix.String(),
		} {
			if _, ok := phases[want]; !ok {
				t.Errorf("%s width %d: phase %q missing", r.Engine, r.Width, want)
			}
		}
		if r.Width > 1 {
			if _, ok := phases[obs.PhaseMerge.String()]; !ok {
				t.Errorf("%s width %d: pipelined run has no merge phase", r.Engine, r.Width)
			}
		}
	}

	fig := profile.Figure()
	if len(fig.Series) != 2 {
		t.Errorf("figure has %d series, want 2", len(fig.Series))
	}

	var buf bytes.Buffer
	if err := WriteObsJSON(&buf, []*ObsProfile{profile}); err != nil {
		t.Fatal(err)
	}
	var decoded []ObsProfile
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if len(decoded) != 1 || len(decoded[0].Results) != len(profile.Results) {
		t.Error("artifact round-trip lost results")
	}
}
