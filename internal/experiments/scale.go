// Package experiments reproduces the evaluation of the paper (§6,
// Figures 7–12): it generates the two workloads (the astronomy substitute —
// near-uniform 20-d vectors with independent random k-NN queries — and the
// image substitute — clustered 64-d histograms with highly dependent
// queries), runs single and multiple similarity queries over scan and
// X-tree engines, and renders each figure as a table of series.
//
// The harness is shared by cmd/msqbench and the repository's benchmark
// suite; EXPERIMENTS.md records paper-vs-measured shapes.
package experiments

import (
	"fmt"

	"metricdb/internal/dataset"
	"metricdb/internal/engine"
	"metricdb/internal/msq"
	"metricdb/internal/query"
	"metricdb/internal/scan"
	"metricdb/internal/store"
	"metricdb/internal/vec"
	"metricdb/internal/xtree"
)

// Scale sizes the experiments. The paper uses 1,000,000 20-d and 112,000
// 64-d objects; the default scales keep the distributions and query
// parameters while shrinking the object counts so a full run finishes in
// seconds (Small) or minutes (Medium). Paper replicates the original
// sizes.
type Scale struct {
	Name     string
	AstroN   int // uniform 20-d objects (Tycho substitute)
	AstroDim int
	AstroK   int // k for astronomy k-NN queries (paper: 10)
	ImageN   int // clustered 64-d objects (image-DB substitute)
	ImageDim int
	ImageK   int // k for image k-NN queries (paper: 20)
	// MValues are the multi-query sizes of Figures 7–10 (paper:
	// 1, 10, 20, 40, 50, 100).
	MValues []int
	// ServerCounts are the cluster sizes of Figures 11–12 (paper:
	// 1, 4, 8, 16).
	ServerCounts []int
	// BaseM is the per-server block size scaled by s in the parallel
	// experiments (paper: 100).
	BaseM int
	Seed  int64
}

// SmallScale finishes a full figure sweep in a few seconds; used by tests
// and the default benchmarks.
func SmallScale() Scale {
	return Scale{
		Name:     "small",
		AstroN:   20000,
		AstroDim: 20,
		AstroK:   10,
		ImageN:   20000,
		ImageDim: 64,
		ImageK:   20,
		MValues:  []int{1, 10, 20, 40, 50, 100},
		// 16 servers over the small image set would leave < 400
		// objects per server; keep the paper's counts anyway — the
		// degradation at s=16 is part of the reproduced result.
		ServerCounts: []int{1, 4, 8, 16},
		BaseM:        100,
		Seed:         1,
	}
}

// MediumScale is a minutes-long run closer to the paper's proportions.
func MediumScale() Scale {
	s := SmallScale()
	s.Name = "medium"
	s.AstroN = 200000
	s.ImageN = 30000
	return s
}

// PaperScale replicates the original dataset sizes (1,000,000 and
// 112,000); expect a long run.
func PaperScale() Scale {
	s := SmallScale()
	s.Name = "paper"
	s.AstroN = 1000000
	s.ImageN = 112000
	return s
}

// ScaleByName resolves "small", "medium" or "paper".
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "small", "":
		return SmallScale(), nil
	case "medium":
		return MediumScale(), nil
	case "paper":
		return PaperScale(), nil
	default:
		return Scale{}, fmt.Errorf("experiments: unknown scale %q (want small, medium or paper)", name)
	}
}

// Workload is one dataset plus its query generator.
type Workload struct {
	Name  string
	Items []store.Item
	Dim   int
	K     int
	// Queries returns m query objects; for the astronomy workload these
	// are independent random database objects, for the image workload
	// they are dependent (spatially adjacent) objects, mimicking the
	// queries an exploration session generates.
	Queries func(seed int64, m int) ([]msq.Query, error)
}

// Astronomy builds the Tycho-substitute workload: cluster-free 20-d
// vectors with a realistic lower intrinsic dimensionality (real measured
// star features are correlated) and independent random k-NN query objects.
func Astronomy(sc Scale) Workload {
	items, err := dataset.NearUniform(sc.Seed, sc.AstroN, sc.AstroDim, 8, 0.01)
	if err != nil {
		// The parameters are compile-time constants; failure is a bug.
		panic(err)
	}
	w := Workload{Name: "astronomy", Items: items, Dim: sc.AstroDim, K: sc.AstroK}
	w.Queries = func(seed int64, m int) ([]msq.Query, error) {
		picks, err := dataset.SampleQueries(seed, items, m)
		if err != nil {
			return nil, err
		}
		return toQueries(picks, sc.AstroK), nil
	}
	return w
}

// Image builds the image-database substitute: highly clustered 64-d
// histogram-like vectors; query objects are the nearest neighbors of a
// random seed object, reproducing the strong inter-query dependence of the
// manual-exploration workload.
func Image(sc Scale) (Workload, error) {
	items, err := dataset.Clustered(dataset.ClusteredConfig{
		Seed:      sc.Seed + 1,
		N:         sc.ImageN,
		Dim:       sc.ImageDim,
		Clusters:  8,
		Spread:    0.12,
		Histogram: true,
	})
	if err != nil {
		return Workload{}, err
	}
	w := Workload{Name: "image", Items: items, Dim: sc.ImageDim, K: sc.ImageK}
	w.Queries = func(seed int64, m int) ([]msq.Query, error) {
		return dependentQueries(items, seed, m, sc.ImageK)
	}
	return w, nil
}

// toQueries wraps items as k-NN queries.
func toQueries(items []store.Item, k int) []msq.Query {
	out := make([]msq.Query, len(items))
	for i, it := range items {
		out[i] = msq.Query{ID: uint64(it.ID), Vec: it.Vec, Type: query.NewKNN(k)}
	}
	return out
}

// dependentQueries reproduces the manual-exploration query stream of §6:
// each hypothetical user contributes the k-nearest neighborhood of a random
// start object (one user per k queries, so m = c·k like the paper's
// c concurrent users), computed on a throwaway engine whose cost is not
// measured. The result is m queries forming ceil(m/k) tight spatial groups.
func dependentQueries(items []store.Item, seed int64, m, k int) ([]msq.Query, error) {
	if m > len(items) {
		return nil, fmt.Errorf("experiments: %d dependent queries from %d items", m, len(items))
	}
	eng, err := scan.New(items, 4096, 0)
	if err != nil {
		return nil, err
	}
	proc, err := msq.New(eng, vec.Euclidean{}, msq.Options{})
	if err != nil {
		return nil, err
	}

	seen := make(map[store.ItemID]bool, m)
	out := make([]msq.Query, 0, m)
	for user := 0; len(out) < m && user < 4*m; user++ {
		picks, err := dataset.SampleQueries(seed+int64(user), items, 1)
		if err != nil {
			return nil, err
		}
		answers, _, err := proc.Single(picks[0].Vec, query.NewKNN(k))
		if err != nil {
			return nil, err
		}
		for _, a := range answers.Answers() {
			if len(out) == m {
				break
			}
			if seen[a.ID] {
				continue
			}
			seen[a.ID] = true
			it := items[a.ID]
			out = append(out, msq.Query{ID: uint64(it.ID), Vec: it.Vec, Type: query.NewKNN(k)})
		}
	}
	if len(out) < m {
		return nil, fmt.Errorf("experiments: could only derive %d of %d dependent queries", len(out), m)
	}
	return out, nil
}

// EngineMaker builds a fresh (cold) engine over a workload.
type EngineMaker struct {
	Name string
	Make func() (engine.Engine, error)
}

// ScanMaker returns the sequential-scan engine factory for w, with the
// paper's 32 KB pages and 10 % buffer.
func ScanMaker(w Workload) EngineMaker {
	capacity := store.PageCapacityForBlockSize(32768, w.Dim)
	pages := (len(w.Items) + capacity - 1) / capacity
	return EngineMaker{
		Name: "scan",
		Make: func() (engine.Engine, error) {
			return scan.New(w.Items, capacity, store.DefaultBufferPages(pages))
		},
	}
}

// XTreeMaker returns the X-tree engine factory for w. Building the tree is
// expensive, so the factory constructs it once and then returns the same
// tree with reset counters.
func XTreeMaker(w Workload) EngineMaker {
	var tree *xtree.Tree
	return EngineMaker{
		Name: "xtree",
		Make: func() (engine.Engine, error) {
			if tree == nil {
				t, err := xtree.Bulk(w.Items, w.Dim, xtree.DefaultConfig(w.Dim))
				if err != nil {
					return nil, err
				}
				tree = t
			}
			tree.Pager().ResetStats()
			return tree, nil
		},
	}
}
