package experiments

import "testing"

// TestRunChaos exercises the degraded-mode experiment end to end on a
// small astronomy workload: RunChaos itself asserts soundness (range
// subset-ness, k-NN rank-wise distance domination), so the test checks
// the monotone shape of the reported coverage and recall.
func TestRunChaos(t *testing.T) {
	sc := testScale()
	res, err := RunChaos(Astronomy(sc), 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FailedServers) != 4 {
		t.Fatalf("%d failure counts, want 4", len(res.FailedServers))
	}
	if res.Coverage[0] != 1 || res.Recall[0] != 1 {
		t.Fatalf("fault-free run degraded: coverage=%g recall=%g", res.Coverage[0], res.Recall[0])
	}
	for f := 1; f < 4; f++ {
		wantCov := float64(4-f) / 4
		if res.Coverage[f] != wantCov {
			t.Errorf("f=%d: coverage %g, want %g", f, res.Coverage[f], wantCov)
		}
		if res.Recall[f] > res.Recall[f-1]+1e-9 {
			t.Errorf("recall increased with more failures: %v", res.Recall)
		}
	}
	fig := res.Figure()
	if len(fig.Series) != 2 || len(fig.XVals) != 4 {
		t.Errorf("figure shape: %d series, %d x-values", len(fig.Series), len(fig.XVals))
	}
}
