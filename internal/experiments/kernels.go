package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"sort"
	"time"

	"metricdb/internal/report"
	"metricdb/internal/vec"
)

// The kernels experiment measures the bounded distance kernels in
// isolation: full Distance against DistanceWithin over the same pair set,
// across metrics, dimensionalities and abandon rates. The abandon rate is
// induced by choosing the limit as the matching quantile of the pair
// distance distribution — "0.95" means ~95% of evaluations exceed the
// limit and abandon mid-vector, the regime the multi-query hot path sees
// when most offered items are far outside a query's pruning bound. Rate 0
// uses an infinite limit and so measures the bounded kernel's bookkeeping
// overhead when the bound never resolves anything. The results are the
// BENCH_kernels.json artifact.

// KernelResult is one (metric, dim, rate) measurement.
type KernelResult struct {
	Metric      string  `json:"metric"`
	Dim         int     `json:"dim"`
	AbandonRate float64 `json:"abandon_rate"` // target fraction of abandoned evaluations
	// ObservedAbandonRate is the fraction of benchmark evaluations the
	// chosen limit actually abandoned (quantile granularity makes it
	// differ slightly from the target).
	ObservedAbandonRate float64 `json:"observed_abandon_rate"`
	FullNsPerOp         float64 `json:"full_ns_per_op"`
	BoundedNsPerOp      float64 `json:"bounded_ns_per_op"`
	// Speedup is FullNsPerOp / BoundedNsPerOp: > 1 means the bounded
	// kernel beats the full calculation at this abandon rate.
	Speedup float64 `json:"speedup"`
}

// KernelSweep is the full kernel measurement set.
type KernelSweep struct {
	Dims    []int          `json:"dims"`
	Rates   []float64      `json:"abandon_rates"`
	Pairs   int            `json:"pairs"`
	Results []KernelResult `json:"results"`
}

type kernelPair struct{ a, b vec.Vector }

// kernelMetrics returns the metrics with native bounded kernels; the
// weighted metric needs per-dimension weights, so construction is
// dimension-bound.
func kernelMetrics(dim int, rng *rand.Rand) ([]vec.BoundedMetric, error) {
	mink3, err := vec.NewMinkowski(3)
	if err != nil {
		return nil, err
	}
	weights := make(vec.Vector, dim)
	for i := range weights {
		weights[i] = 0.5 + rng.Float64()
	}
	we, err := vec.NewWeightedEuclidean(weights)
	if err != nil {
		return nil, err
	}
	return []vec.BoundedMetric{
		vec.Euclidean{}, vec.Manhattan{}, vec.Chebyshev{}, mink3, we,
	}, nil
}

// RunKernels measures every metric at the given dimensionalities and
// abandon rates over nPairs fixed-seed random pairs per configuration.
func RunKernels(dims []int, rates []float64, nPairs int) (*KernelSweep, error) {
	sweep := &KernelSweep{Dims: dims, Rates: rates, Pairs: nPairs}
	for _, dim := range dims {
		rng := rand.New(rand.NewSource(int64(7000 + dim)))
		metrics, err := kernelMetrics(dim, rng)
		if err != nil {
			return nil, err
		}
		// The pair set models the hot-path distance distribution: a
		// minority of near pairs — the items that set a query's pruning
		// bound — and a majority of far pairs, the items a page scan
		// offers that the bound rejects. A quantile limit then lands at
		// near-pair scale, the way a k-NN radius does, instead of at the
		// concentrated mean distance of iid random pairs (where high-dim
		// concentration of measure would let every partial sum run almost
		// to the end of the vector before crossing the bound).
		pairs := make([]kernelPair, nPairs)
		for i := range pairs {
			a, b := randVec(rng, dim), randVec(rng, dim)
			if rng.Float64() < 0.3 {
				for j := range b {
					b[j] = a[j] + 0.15*b[j]
				}
			}
			pairs[i] = kernelPair{a, b}
		}
		for _, m := range metrics {
			ds := make([]float64, nPairs)
			for i, p := range pairs {
				ds[i] = m.Distance(p.a, p.b)
			}
			sorted := append([]float64(nil), ds...)
			sort.Float64s(sorted)

			fullNs := timeKernel(nPairs, func(i int) {
				p := pairs[i]
				kernelSinkF = m.Distance(p.a, p.b)
			})
			for _, rate := range rates {
				limit := math.Inf(1)
				if rate > 0 {
					idx := int(float64(nPairs) * (1 - rate))
					if idx >= nPairs {
						idx = nPairs - 1
					}
					limit = sorted[idx]
				}
				abandoned := 0
				for _, d := range ds {
					if d > limit {
						abandoned++
					}
				}
				boundedNs := timeKernel(nPairs, func(i int) {
					p := pairs[i]
					kernelSinkF, kernelSinkB = m.DistanceWithin(p.a, p.b, limit)
				})
				sweep.Results = append(sweep.Results, KernelResult{
					Metric:              m.Name(),
					Dim:                 dim,
					AbandonRate:         rate,
					ObservedAbandonRate: float64(abandoned) / float64(nPairs),
					FullNsPerOp:         fullNs,
					BoundedNsPerOp:      boundedNs,
					Speedup:             fullNs / boundedNs,
				})
			}
		}
	}
	return sweep, nil
}

var (
	kernelSinkF float64
	kernelSinkB bool
)

func randVec(rng *rand.Rand, dim int) vec.Vector {
	v := make(vec.Vector, dim)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// timeKernel measures fn's mean ns per call: fn is cycled over [0, nPairs)
// until the measured run lasts long enough to dominate timer granularity.
// The best of three runs is reported, the standard remedy against
// scheduling noise in short microbenchmarks.
func timeKernel(nPairs int, fn func(i int)) float64 {
	const minDur = 20 * time.Millisecond
	iters := nPairs
	for {
		start := time.Now()
		for i, j := 0, 0; i < iters; i++ {
			fn(j)
			if j++; j == nPairs {
				j = 0
			}
		}
		if elapsed := time.Since(start); elapsed >= minDur {
			best := elapsed
			for run := 0; run < 2; run++ {
				start = time.Now()
				for i, j := 0, 0; i < iters; i++ {
					fn(j)
					if j++; j == nPairs {
						j = 0
					}
				}
				if e := time.Since(start); e < best {
					best = e
				}
			}
			return float64(best.Nanoseconds()) / float64(iters)
		}
		iters *= 4
	}
}

// Figure renders the sweep as speedup per abandon rate, one series per
// (metric, dim) at the largest dim for readability.
func (s *KernelSweep) Figure() *report.Figure {
	fig := &report.Figure{
		Title:  "Bounded-kernel speed-up wrt abandon rate",
		XLabel: "abandon rate",
		YLabel: "full / bounded ns per op",
	}
	for _, r := range s.Rates {
		fig.XVals = append(fig.XVals, r)
	}
	bySeries := map[string][]float64{}
	var order []string
	for _, r := range s.Results {
		key := fmt.Sprintf("%s d=%d", r.Metric, r.Dim)
		if _, ok := bySeries[key]; !ok {
			order = append(order, key)
		}
		bySeries[key] = append(bySeries[key], r.Speedup)
	}
	for _, name := range order {
		fig.AddSeries(name, bySeries[name]) //nolint:errcheck // lengths match by construction
	}
	return fig
}

// WriteKernelsJSON writes the sweep as an indented JSON document (the
// BENCH_kernels.json artifact).
func WriteKernelsJSON(w io.Writer, sweep *KernelSweep) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sweep)
}

// WriteKernelsJSONFile writes the artifact to path.
func WriteKernelsJSONFile(path string, sweep *KernelSweep) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteKernelsJSON(f, sweep); err != nil {
		f.Close() //nolint:errcheck // write error takes precedence
		return err
	}
	return f.Close()
}
