package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"metricdb/internal/msq"
	"metricdb/internal/obs"
	"metricdb/internal/query"
	"metricdb/internal/report"
	"metricdb/internal/vec"
)

// The obs experiment profiles the multi-query processor with the
// observability tracer enabled: one multi-query batch per engine and
// pipeline width, recording the per-phase latency histograms (page fetch
// and wait, query-distance matrix, distance kernel, Lemma-1/2 avoidance
// checks, result merge). Each traced run is checked against an untraced
// reference run on a fresh engine — answers, page reads, distance
// calculations, avoidance counters must be bit-identical, the tracing
// contract. The results are the BENCH_obs.json artifact: the per-phase
// latency baseline for regression comparison.

// ObsPhase is one phase's latency histogram summary within a run.
type ObsPhase struct {
	Phase   string  `json:"phase"`
	Count   int64   `json:"count"`
	TotalNs int64   `json:"total_ns"`
	MeanNs  float64 `json:"mean_ns"`
	P50Ns   float64 `json:"p50_ns"`
	P99Ns   float64 `json:"p99_ns"`
}

// ObsResult is one traced (engine, width) run.
type ObsResult struct {
	Workload         string  `json:"workload"`
	Engine           string  `json:"engine"`
	Width            int     `json:"width"`
	Queries          int     `json:"queries"`
	Seconds          float64 `json:"seconds"`
	PagesRead        int64   `json:"pages_read"`
	DistCalcs        int64   `json:"dist_calcs"`
	Avoided          int64   `json:"avoided"`
	AvoidTries       int64   `json:"avoid_tries"`
	PartialAbandoned int64   `json:"partial_abandoned"`
	// Identical reports whether the traced run's answers and counters
	// matched the untraced reference run exactly; false flags a tracing
	// perturbation bug.
	Identical bool       `json:"identical"`
	Phases    []ObsPhase `json:"phases"`
}

// ObsProfile is one workload's phase-latency measurement set.
type ObsProfile struct {
	Workload string      `json:"workload"`
	M        int         `json:"m"`
	Widths   []int       `json:"widths"`
	Results  []ObsResult `json:"results"`
}

// RunObs profiles one m-query batch of w's workload per engine and
// pipeline width. Each width runs the batch twice on freshly reset
// engines — once untraced (the reference), once with a tracer installed —
// and reports the traced run's phase histograms plus the equivalence
// verdict.
func RunObs(w Workload, widths []int, m int) (*ObsProfile, error) {
	queries, err := w.Queries(w.querySeed(), m)
	if err != nil {
		return nil, err
	}
	profile := &ObsProfile{Workload: w.Name, M: m, Widths: widths}
	for _, maker := range []EngineMaker{ScanMaker(w), XTreeMaker(w)} {
		for _, width := range widths {
			run := func(tr *obs.Tracer) ([]query.Answer, msq.Stats, float64, error) {
				eng, err := maker.Make()
				if err != nil {
					return nil, msq.Stats{}, 0, err
				}
				proc, err := msq.New(eng, vec.Euclidean{}, msq.Options{Concurrency: width})
				if err != nil {
					return nil, msq.Stats{}, 0, err
				}
				if tr != nil {
					proc = proc.WithTracer(tr)
				}
				start := time.Now()
				lists, stats, err := proc.NewSession().MultiQueryAll(queries)
				// The X-tree maker reuses one tree across runs; detach the
				// tracer so the next (untraced) run stays hook-free.
				eng.Pager().SetTracer(nil)
				if err != nil {
					return nil, msq.Stats{}, 0, err
				}
				var flat []query.Answer
				for _, l := range lists {
					flat = append(flat, l.Answers()...)
				}
				return flat, stats, time.Since(start).Seconds(), nil
			}

			refAnswers, refStats, _, err := run(nil)
			if err != nil {
				return nil, err
			}
			tr := obs.New(obs.Config{SlowQueryThreshold: -1})
			answers, stats, elapsed, err := run(tr)
			if err != nil {
				return nil, err
			}

			res := ObsResult{
				Workload:         w.Name,
				Engine:           maker.Name,
				Width:            width,
				Queries:          m,
				Seconds:          elapsed,
				PagesRead:        stats.PagesRead,
				DistCalcs:        stats.DistCalcs,
				Avoided:          stats.Avoided,
				AvoidTries:       stats.AvoidTries,
				PartialAbandoned: stats.PartialAbandoned,
				Identical: sameFlatAnswers(refAnswers, answers) &&
					stats.PagesRead == refStats.PagesRead &&
					stats.DistCalcs == refStats.DistCalcs &&
					stats.Avoided == refStats.Avoided &&
					stats.AvoidTries == refStats.AvoidTries &&
					stats.PartialAbandoned == refStats.PartialAbandoned,
			}
			for p := 0; p < obs.NumPhases; p++ {
				snap := tr.Snapshot(obs.Phase(p))
				if snap.Count == 0 {
					continue
				}
				res.Phases = append(res.Phases, ObsPhase{
					Phase:   obs.Phase(p).String(),
					Count:   snap.Count,
					TotalNs: snap.SumNs,
					MeanNs:  float64(snap.Mean().Nanoseconds()),
					P50Ns:   float64(snap.Quantile(0.5).Nanoseconds()),
					P99Ns:   float64(snap.Quantile(0.99).Nanoseconds()),
				})
			}
			profile.Results = append(profile.Results, res)
		}
	}
	return profile, nil
}

// Figure renders the width-1 runs as per-phase time share, one series per
// engine: where a sequential multi-query batch spends its wall clock.
func (p *ObsProfile) Figure() *report.Figure {
	fig := &report.Figure{
		Title:  fmt.Sprintf("Phase time share at width 1 (%s database, m=%d)", p.Workload, p.M),
		XLabel: "phase index",
		YLabel: "fraction of traced time",
	}
	names := obs.PhaseNames()
	for i := range names {
		fig.XVals = append(fig.XVals, float64(i))
	}
	for _, r := range p.Results {
		if r.Width != 1 {
			continue
		}
		var total int64
		byPhase := map[string]int64{}
		for _, ph := range r.Phases {
			byPhase[ph.Phase] = ph.TotalNs
			total += ph.TotalNs
		}
		series := make([]float64, len(names))
		for i, n := range names {
			if total > 0 {
				series[i] = float64(byPhase[n]) / float64(total)
			}
		}
		fig.AddSeries(r.Engine, series) //nolint:errcheck // lengths match by construction
	}
	return fig
}

// WriteObsJSON writes the profiles as an indented JSON document (the
// BENCH_obs.json artifact).
func WriteObsJSON(w io.Writer, profiles []*ObsProfile) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(profiles)
}

// WriteObsJSONFile writes the artifact to path.
func WriteObsJSONFile(path string, profiles []*ObsProfile) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteObsJSON(f, profiles); err != nil {
		f.Close() //nolint:errcheck // write error takes precedence
		return err
	}
	return f.Close()
}
