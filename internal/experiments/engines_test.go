package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestRunEnginesSmoke runs a miniature engine sweep and checks the
// invariants the committed artifact rests on: every engine answers
// identically to the scan, scan rows have speedup exactly 1, the
// pivot-based engines account their setup distances, and the JSON document
// round-trips.
func TestRunEnginesSmoke(t *testing.T) {
	sweep, err := RunEngines([]int{4}, []int{1, 4}, 600)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(sweep.Results), len(sweep.Engines)*2; got != want {
		t.Fatalf("%d results, want %d", got, want)
	}
	var sawPivotWin bool
	for _, r := range sweep.Results {
		if !r.Identical {
			t.Errorf("%s dim=%d m=%d diverged from the scan", r.Engine, r.Dim, r.M)
		}
		if r.Engine == "scan" && r.Speedup != 1 {
			t.Errorf("scan speedup = %g, want exactly 1", r.Speedup)
		}
		if (r.Engine == "pivot" || r.Engine == "pmtree") && r.PivotDistCalcs == 0 {
			t.Errorf("%s dim=%d m=%d reports no pivot setup distances", r.Engine, r.Dim, r.M)
		}
		if r.Engine == "pivot" && r.Speedup > 1 {
			sawPivotWin = true
		}
	}
	if !sawPivotWin {
		t.Error("pivot table never reduced distance work below the scan at intrinsic dim 4")
	}

	var buf bytes.Buffer
	if err := WriteEnginesJSON(&buf, sweep); err != nil {
		t.Fatal(err)
	}
	var back EnginesSweep
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != len(sweep.Results) {
		t.Errorf("round-trip lost results: %d vs %d", len(back.Results), len(sweep.Results))
	}
	if fig := sweep.Figure(); len(fig.Series) == 0 || len(fig.XVals) != 2 {
		t.Errorf("figure shape: %d series, %d x-values", len(fig.Series), len(fig.XVals))
	}
}
