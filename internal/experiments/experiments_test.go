package experiments

import (
	"strings"
	"testing"

	"metricdb/internal/cost"
	"metricdb/internal/parallel"
)

// testScale is a fast variant for CI: same structure, fewer objects.
func testScale() Scale {
	return Scale{
		Name:         "test",
		AstroN:       6000,
		AstroDim:     20,
		AstroK:       10,
		ImageN:       3000,
		ImageDim:     64,
		ImageK:       20,
		MValues:      []int{1, 10, 50, 100},
		ServerCounts: []int{1, 4, 8},
		BaseM:        50,
		Seed:         1,
	}
}

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"small", "medium", "paper", ""} {
		if _, err := ScaleByName(name); err != nil {
			t.Errorf("ScaleByName(%q): %v", name, err)
		}
	}
	if _, err := ScaleByName("huge"); err == nil {
		t.Error("unknown scale accepted")
	}
	if PaperScale().AstroN != 1000000 || PaperScale().ImageN != 112000 {
		t.Error("paper scale does not match the original dataset sizes")
	}
}

func TestWorkloads(t *testing.T) {
	sc := testScale()
	astro := Astronomy(sc)
	if len(astro.Items) != sc.AstroN || astro.Dim != 20 {
		t.Fatalf("astronomy workload: %d items, dim %d", len(astro.Items), astro.Dim)
	}
	qs, err := astro.Queries(1, 20)
	if err != nil || len(qs) != 20 {
		t.Fatalf("astro queries: %d, %v", len(qs), err)
	}

	image, err := Image(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(image.Items) != sc.ImageN || image.Dim != 64 {
		t.Fatalf("image workload: %d items, dim %d", len(image.Items), image.Dim)
	}
	iqs, err := image.Queries(2, 20)
	if err != nil || len(iqs) != 20 {
		t.Fatalf("image queries: %d, %v", len(iqs), err)
	}
	// Dependent queries must be mutually close compared to random pairs:
	// they are the m nearest neighbors of one seed object.
	closePairs := 0
	for i := 1; i < len(iqs); i++ {
		if d := iqs[0].Vec.Sub(iqs[i].Vec).Norm(); d < 0.2 {
			closePairs++
		}
	}
	if closePairs < len(iqs)/2 {
		t.Errorf("only %d of %d dependent queries are near the seed", closePairs, len(iqs)-1)
	}
}

// TestSweepReproducesPaperShapes is the core reproduction check for
// Figures 7-10: the qualitative claims of §6.1–6.3 must hold on the
// synthetic substitutes.
func TestSweepReproducesPaperShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in -short mode")
	}
	sc := testScale()
	model := cost.PaperModel(20)

	astro := Astronomy(sc)
	sweepA, err := RunSweep(astro, sc.MValues, model)
	if err != nil {
		t.Fatal(err)
	}
	image, err := Image(sc)
	if err != nil {
		t.Fatal(err)
	}
	sweepI, err := RunSweep(image, sc.MValues, cost.PaperModel(64))
	if err != nil {
		t.Fatal(err)
	}

	last := len(sc.MValues) - 1
	for _, sw := range []*Sweep{sweepA, sweepI} {
		// §6.1: the scan's per-query I/O cost drops by a factor of
		// nearly m.
		scanDrop := sw.Scan[0].PagesPerQuery() / sw.Scan[last].PagesPerQuery()
		if scanDrop < float64(sc.MValues[last])*0.9 {
			t.Errorf("%s: scan I/O drop %.1f, want ≈ m = %d", sw.Workload, scanDrop, sc.MValues[last])
		}
		// §6.1: the X-tree's I/O cost per query also drops with m,
		// but by less than the scan's.
		xtreeDrop := sw.XTree[0].PagesPerQuery() / sw.XTree[last].PagesPerQuery()
		if xtreeDrop <= 1 {
			t.Errorf("%s: X-tree I/O did not drop with m (factor %.2f)", sw.Workload, xtreeDrop)
		}
		if xtreeDrop >= scanDrop {
			t.Errorf("%s: X-tree I/O drop (%.1f) not smaller than scan's (%.1f)", sw.Workload, xtreeDrop, scanDrop)
		}
		// §6.2: the triangle inequality reduces the scan's CPU cost
		// per query as m grows.
		cpuDrop := sw.Scan[0].DistCalcsPerQuery() / sw.Scan[last].DistCalcsPerQuery()
		if cpuDrop <= 1.5 {
			t.Errorf("%s: scan CPU drop only %.2f", sw.Workload, cpuDrop)
		}
		// §6.3: the total cost per query decreases with m for both
		// engines (speed-up > 1 at max m).
		fig10 := sw.Fig10()
		for _, series := range fig10.Series {
			if series.Y[last] <= 1 {
				t.Errorf("%s/%s: no total speed-up at m=%d (%.2f)", sw.Workload, series.Name, sc.MValues[last], series.Y[last])
			}
		}
		// §6.1: at m = 1 the X-tree reads fewer pages than the scan.
		if sw.XTree[0].PagesPerQuery() >= sw.Scan[0].PagesPerQuery() {
			t.Errorf("%s: X-tree single query reads %.1f pages, scan %.1f", sw.Workload,
				sw.XTree[0].PagesPerQuery(), sw.Scan[0].PagesPerQuery())
		}
	}

	// §6.2: the CPU reduction is larger on the clustered image data
	// than on the near-uniform astronomy data.
	dropA := sweepA.Scan[0].DistCalcsPerQuery() / sweepA.Scan[last].DistCalcsPerQuery()
	dropI := sweepI.Scan[0].DistCalcsPerQuery() / sweepI.Scan[last].DistCalcsPerQuery()
	if dropI <= dropA {
		t.Errorf("clustered CPU drop (%.1f) not larger than uniform (%.1f)", dropI, dropA)
	}

	// §6.3: for large m the scan overtakes the X-tree in total cost.
	if sweepA.Scan[last].CostPerQuery() >= sweepA.XTree[last].CostPerQuery() {
		t.Errorf("astronomy: scan (%.4fs) did not overtake X-tree (%.4fs) at m=%d",
			sweepA.Scan[last].CostPerQuery(), sweepA.XTree[last].CostPerQuery(), sc.MValues[last])
	}

	// Figures render.
	var b strings.Builder
	if err := sweepA.Fig7().WriteTable(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Figure 7") {
		t.Error("figure table missing title")
	}
}

// TestParallelSweepShapes covers Figures 11-12: parallel speed-up exceeds 1
// and the overall (fig 12) speed-up exceeds the parallelization-only
// (fig 11) speed-up, because it additionally contains the multi-query gain.
func TestParallelSweepShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel sweep in -short mode")
	}
	sc := testScale()
	sc.ServerCounts = []int{1, 4}
	astro := Astronomy(sc)
	model := cost.PaperModel(20)

	for _, kind := range []parallel.EngineKind{parallel.ScanEngine, parallel.XTreeEngine} {
		sw, err := RunParallelSweep(astro, sc, kind, model)
		if err != nil {
			t.Fatal(err)
		}
		fig11 := sw.Fig11()
		fig12 := sw.Fig12()
		s4 := len(sc.ServerCounts) - 1
		if got := fig11.Series[0].Y[s4]; got <= 1 {
			t.Errorf("%s: parallel speed-up at s=4 is %.2f", sw.Engine, got)
		}
		if fig12.Series[0].Y[s4] < fig11.Series[0].Y[s4] {
			t.Errorf("%s: overall speed-up (%.2f) below parallelization speed-up (%.2f)",
				sw.Engine, fig12.Series[0].Y[s4], fig11.Series[0].Y[s4])
		}
	}
}

func TestMicroFigure(t *testing.T) {
	fig := MicroFigure([]int{20, 64})
	if len(fig.Series) != 3 {
		t.Fatalf("micro figure has %d series", len(fig.Series))
	}
	ratio20 := fig.Series[2].Y[0]
	ratio64 := fig.Series[2].Y[1]
	// §6.2 reports 52x and 155x on 1999 hardware; exact values differ on
	// modern CPUs, but a distance calculation must remain much more
	// expensive than a comparison, and the ratio must grow with the
	// dimensionality.
	if ratio20 < 3 {
		t.Errorf("20-d distance/compare ratio %.1f implausibly small", ratio20)
	}
	if ratio64 <= ratio20 {
		t.Errorf("ratio does not grow with dimension: %.1f vs %.1f", ratio64, ratio20)
	}
}

func TestMergeFigures(t *testing.T) {
	sc := testScale()
	sc.ServerCounts = []int{1, 2}
	sc.BaseM = 10
	sc.AstroN = 1500
	astro := Astronomy(sc)
	model := cost.PaperModel(20)
	a, err := RunParallelSweep(astro, sc, parallel.ScanEngine, model)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunParallelSweep(astro, sc, parallel.XTreeEngine, model)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := MergeFigures("Figure 11 (astronomy)", a.Fig11(), b.Fig11())
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Series) != 2 {
		t.Errorf("merged series = %d", len(merged.Series))
	}
	if _, err := MergeFigures("empty"); err == nil {
		t.Error("empty merge accepted")
	}
}
