package experiments

import "testing"

func TestRunStorageEquivalence(t *testing.T) {
	sc, err := ScaleByName("small")
	if err != nil {
		t.Fatal(err)
	}
	w := Astronomy(sc)
	res, err := RunStorage(w, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 3 {
		t.Fatalf("%d runs, want sim/pread/mmap", len(res.Runs))
	}
	if res.Runs[0].Backend != "sim" {
		t.Fatalf("first run is %q, want the sim reference", res.Runs[0].Backend)
	}
	for _, run := range res.Runs {
		if !run.Identical {
			t.Errorf("%s backend diverged from the sim reference", run.Backend)
		}
		if run.PagesRead != res.Runs[0].PagesRead || run.DistCalcs != res.Runs[0].DistCalcs {
			t.Errorf("%s work counters differ: %+v vs %+v", run.Backend, run, res.Runs[0])
		}
		if run.WarmDiskReads != 0 {
			t.Errorf("%s warm batch read %d pages from the backend; buffer should cover all",
				run.Backend, run.WarmDiskReads)
		}
		if run.ColdSeconds <= 0 || run.WarmSeconds <= 0 {
			t.Errorf("%s wall clocks not recorded: %+v", run.Backend, run)
		}
	}
	pread := res.Runs[1]
	if pread.Backend != "pread" || pread.Preads == 0 || pread.BytesRead == 0 {
		t.Errorf("pread backend recorded no real I/O: %+v", pread)
	}
	if res.Pages == 0 || res.PageCapacity == 0 {
		t.Errorf("layout shape missing: %+v", res)
	}
	fig := res.Figure()
	if len(fig.XVals) != 3 {
		t.Errorf("figure has %d x-values", len(fig.XVals))
	}
}
