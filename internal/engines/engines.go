// Package engines is the registry of physical data organizations: the one
// place that knows how to turn items plus tuning into a built
// engine.Engine. The public API (metricdb.Open, OpenStored, OpenCluster)
// and the parallel cluster all construct engines through Build, so adding
// an engine means adding one builder here — not editing construction
// switches scattered over entry points.
package engines

import (
	"fmt"
	"sort"

	"metricdb/internal/engine"
	"metricdb/internal/pivot"
	"metricdb/internal/pmtree"
	"metricdb/internal/scan"
	"metricdb/internal/store"
	"metricdb/internal/vafile"
	"metricdb/internal/vec"
	"metricdb/internal/xtree"
)

// Kind names a physical organization. The values are the public API's
// engine names and the wire protocol's engine strings.
type Kind string

// Registered kinds.
const (
	// Scan is the sequential scan: always applicable, sequential I/O
	// only, and the maximal beneficiary of multiple similarity queries.
	Scan Kind = "scan"
	// XTree is the X-tree index: selective in low and moderate
	// dimensions, with supernodes avoiding high-overlap directory splits.
	XTree Kind = "xtree"
	// VAFile is the vector-approximation file: a scan over in-memory
	// bit-quantized approximations that reads only the pages its distance
	// bounds cannot exclude.
	VAFile Kind = "vafile"
	// Pivot is the LAESA-style pivot table: precomputed pivot-to-item
	// distances aggregated per page, pruning by the triangle inequality
	// alone — sound in any metric space, where MBR geometry is not.
	Pivot Kind = "pivot"
	// PMTree is the PM-tree: a paged metric tree whose nodes carry both
	// covering balls and pivot hyper-rings.
	PMTree Kind = "pmtree"
)

// XTreeTuning is the X-tree's advanced knobs (zero values select the
// derived defaults).
type XTreeTuning struct {
	DirFanout        int
	MaxOverlap       float64
	MinFillRatio     float64
	STRBulkLoad      bool
	ReinsertFraction float64
}

// Spec is a fully resolved engine request: every field is concrete (the
// callers' sentinel defaulting has already happened) except the per-engine
// tuning values, whose zero values select the engine's own defaults.
type Spec struct {
	Kind  Kind
	Items []store.Item
	// Dim is the vector dimensionality (the X-tree needs it for its
	// geometry; others derive it from the items).
	Dim int
	// Metric is the distance function; nil selects Euclidean.
	Metric vec.Metric
	// PageCapacity is items per data page. Required.
	PageCapacity int
	// BufferPages is the concrete LRU buffer size; 0 disables buffering.
	BufferPages int
	// Columns selects sibling page representations (blocked/f32/quant).
	Columns store.ColumnSpec
	// WrapDisk interposes on the freshly built disk (fault injection,
	// persisted layouts); nil serves the engine's own disk.
	WrapDisk func(store.PageSource) (store.PageSource, error)

	// XTree tuning; nil uses defaults derived from Dim and PageCapacity.
	XTree *XTreeTuning
	// VAFileBits is the VA-file's bits per dimension (0 selects 6).
	VAFileBits int
	// Pivots is the pivot count of the pivot table and the PM-tree's
	// hyper-rings (0 selects each engine's default).
	Pivots int
	// PMTreeFanout is the PM-tree's directory fanout (0 selects its
	// default).
	PMTreeFanout int
}

// builder constructs one engine kind from a resolved spec.
type builder func(Spec) (engine.Engine, error)

// registry maps each kind to its builder. It is populated at init and
// read-only afterwards, so lookups need no locking.
var registry = map[Kind]builder{
	Scan:   buildScan,
	XTree:  buildXTree,
	VAFile: buildVAFile,
	Pivot:  buildPivot,
	PMTree: buildPMTree,
}

// Known reports whether kind names a registered engine.
func Known(kind Kind) bool {
	_, ok := registry[kind]
	return ok
}

// Kinds returns the registered kinds in lexical order.
func Kinds() []Kind {
	ks := make([]Kind, 0, len(registry))
	for k := range registry {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

// Build constructs the engine the spec asks for. This is the module's
// single engine-construction site.
func Build(s Spec) (engine.Engine, error) {
	b, ok := registry[s.Kind]
	if !ok {
		return nil, fmt.Errorf("engines: unknown engine %q (have %v)", s.Kind, Kinds())
	}
	return b(s)
}

func buildScan(s Spec) (engine.Engine, error) {
	return scan.NewWithConfig(s.Items, scan.Config{
		PageCapacity: s.PageCapacity,
		BufferPages:  s.BufferPages,
		WrapDisk:     s.WrapDisk,
		Columns:      s.Columns,
	})
}

func buildVAFile(s Spec) (engine.Engine, error) {
	return vafile.New(s.Items, vafile.Config{
		Bits:         s.VAFileBits,
		PageCapacity: s.PageCapacity,
		BufferPages:  s.BufferPages,
		Metric:       s.Metric,
		WrapDisk:     s.WrapDisk,
		Columns:      s.Columns,
	})
}

func buildXTree(s Spec) (engine.Engine, error) {
	cfg := xtree.DefaultConfig(s.Dim)
	cfg.LeafCapacity = s.PageCapacity
	cfg.BufferPages = s.BufferPages
	cfg.Metric = s.Metric
	cfg.WrapDisk = s.WrapDisk
	cfg.Columns = s.Columns
	str := false
	if x := s.XTree; x != nil {
		if x.DirFanout != 0 {
			cfg.DirFanout = x.DirFanout
		}
		cfg.MaxOverlap = x.MaxOverlap
		cfg.MinFillRatio = x.MinFillRatio
		cfg.ReinsertFraction = x.ReinsertFraction
		str = x.STRBulkLoad
	}
	if str {
		return xtree.BulkSTR(s.Items, s.Dim, cfg)
	}
	return xtree.Bulk(s.Items, s.Dim, cfg)
}

func buildPivot(s Spec) (engine.Engine, error) {
	return pivot.New(s.Items, pivot.Config{
		Pivots:       s.Pivots,
		PageCapacity: s.PageCapacity,
		BufferPages:  s.BufferPages,
		Metric:       s.Metric,
		WrapDisk:     s.WrapDisk,
		Columns:      s.Columns,
	})
}

func buildPMTree(s Spec) (engine.Engine, error) {
	return pmtree.New(s.Items, pmtree.Config{
		PageCapacity: s.PageCapacity,
		Fanout:       s.PMTreeFanout,
		Pivots:       s.Pivots,
		BufferPages:  s.BufferPages,
		Metric:       s.Metric,
		WrapDisk:     s.WrapDisk,
		Columns:      s.Columns,
	})
}
