package metricdb

import (
	"context"
	"fmt"
	"io"
	"time"

	"metricdb/internal/engine"
	"metricdb/internal/engines"
	"metricdb/internal/msq"
	"metricdb/internal/obs"
	"metricdb/internal/store"
	"metricdb/internal/vec"
)

// EngineKind selects the physical data organization. The values mirror the
// registry of internal/engines; Open, OpenStored, and OpenCluster all
// construct engines through that registry.
type EngineKind string

// Supported engines.
const (
	// EngineScan is the sequential scan: always applicable, sequential
	// I/O only, and the maximal beneficiary of multiple similarity
	// queries (the per-query I/O speed-up is exactly m).
	EngineScan = EngineKind(engines.Scan)
	// EngineXTree is the X-tree index: selective in low and moderate
	// dimensions, with supernodes avoiding high-overlap directory splits.
	EngineXTree = EngineKind(engines.XTree)
	// EngineVAFile is the vector-approximation file: a scan over
	// in-memory bit-quantized approximations that reads only the exact
	// vectors its distance bounds cannot exclude — the refined scan the
	// paper cites (Weber et al., VLDB 1998).
	EngineVAFile = EngineKind(engines.VAFile)
	// EnginePivot is the LAESA-style pivot table: pivot-to-item distances
	// precomputed at page granularity, so each query pays one distance
	// per pivot and then prunes pages by the triangle inequality alone —
	// applicable in any metric space, with no coordinate geometry.
	EnginePivot = EngineKind(engines.Pivot)
	// EnginePMTree is the PM-tree: a paged metric tree whose nodes carry
	// both covering balls and pivot hyper-rings, pruning with whichever
	// bound is tighter.
	EnginePMTree = EngineKind(engines.PMTree)
)

// Options configures Open. The zero value selects a sequential scan with
// Euclidean distance, a page capacity derived from 32 KB blocks, the
// paper's 10 %-of-pages LRU buffer, and both avoidance lemmas.
type Options struct {
	// Engine selects the physical organization; empty means EngineScan.
	Engine EngineKind
	// Metric is the distance function; nil means Euclidean.
	Metric Metric
	// PageCapacity is the number of items per data page; 0 derives it
	// from a 32 KB block at the data's dimensionality.
	PageCapacity int
	// BufferPages sizes the LRU page buffer; 0 selects the 10 % default
	// and a negative value disables buffering.
	BufferPages int
	// Avoidance selects the triangle-inequality mode; the zero value is
	// AvoidBoth.
	Avoidance AvoidanceMode
	// Concurrency is the intra-server pipeline width of the multi-query
	// processor: how many goroutines evaluate each data page, with page
	// I/O prefetched alongside. 0 and 1 run sequentially. Results are
	// bit-identical at every width (see internal/msq/pipeline.go).
	Concurrency int
	// XTree overrides advanced X-tree parameters; nil uses defaults
	// derived from PageCapacity.
	XTree *XTreeOptions
	// VAFileBits is the bits-per-dimension of the VA-file engine
	// (0 selects 6).
	VAFileBits int
	// Pivot overrides pivot-table parameters; nil uses defaults.
	Pivot *PivotOptions
	// PMTree overrides PM-tree parameters; nil uses defaults.
	PMTree *PMTreeOptions
	// Layout selects the page representation the distance loops consume:
	// "" or "aos" evaluates item vectors one at a time (the original
	// path); "soa" materializes contiguous float64 blocks per page and
	// runs the blocked row kernels over them, bit-identical to "aos" in
	// answers and every statistic; "f32" additionally materializes a
	// float32 sibling and uses it where rank-safe (distances differ by
	// bounded rounding — see DESIGN.md); "quant" additionally quantizes
	// each page to VA-file-style cell codes and pre-filters (query, item)
	// pairs whose cell lower bound already exceeds the pruning radius,
	// with answers and page reads bit-identical to "aos".
	Layout string
	// QuantBits is the bits per dimension of the "quant" layout's codes
	// (0 selects 8). Setting it with any other layout is an error.
	QuantBits int
	// Mmap serves a stored database by memory-mapping its page file
	// instead of issuing preads. Only OpenStored consults it; on platforms
	// without mmap support the disk silently falls back to pread.
	Mmap bool
	// Calibrate attaches a predicted-vs-observed calibration recorder to
	// the database: every completed QueryAll batch and EXPLAIN run is
	// scored against the advisor's cost prediction for the active engine,
	// and DB.AdviseBatch additionally returns the calibrated ranking.
	// Strictly observational — answers and Stats are bit-identical with
	// and without it (see internal/calib).
	Calibrate bool
}

// XTreeOptions exposes the X-tree tuning knobs.
type XTreeOptions struct {
	// DirFanout is the normal directory fanout (0: derived from block
	// size).
	DirFanout int
	// MaxOverlap is the supernode threshold in (0, 1] (0: the 20 %
	// default).
	MaxOverlap float64
	// MinFillRatio is the minimum node fill on splits (0: 0.4).
	MinFillRatio float64
	// STRBulkLoad builds the tree with Sort-Tile-Recursive packing
	// instead of dynamic insertion: much faster construction and full
	// pages, but more leaf overlap in high dimensions.
	STRBulkLoad bool
	// ReinsertFraction enables R*-style forced reinsertion during
	// dynamic insertion (0 disables, 0.3 is the R* recommendation).
	ReinsertFraction float64
}

// PivotOptions exposes the pivot-table tuning knobs.
type PivotOptions struct {
	// Pivots is the number of reference objects (0: 16). More pivots
	// tighten the page bounds at the cost of that many distance
	// calculations per query.
	Pivots int
}

// PMTreeOptions exposes the PM-tree tuning knobs.
type PMTreeOptions struct {
	// Pivots is the number of hyper-ring pivots (0: 8).
	Pivots int
	// Fanout is the directory fanout (0: 8; otherwise >= 2).
	Fanout int
}

// Validate checks the options for structural mistakes without consulting a
// database: an unknown engine kind, negative tuning knobs, or X-tree
// parameters outside their domains. It accepts every zero or sentinel value
// that Open would default (PageCapacity 0, BufferPages <= 0, nil Metric,
// empty Engine), so Validate(withDefaults(...)) is stable. Command-line
// front ends call it to reject flag mistakes before any data is loaded.
func (o Options) Validate() error {
	if o.Engine != "" && !engines.Known(engines.Kind(o.Engine)) {
		return fmt.Errorf("metricdb: unknown engine %q (have %v)", o.Engine, engines.Kinds())
	}
	if o.PageCapacity < 0 {
		return fmt.Errorf("metricdb: page capacity must be >= 0 (0 derives from 32 KB blocks), got %d", o.PageCapacity)
	}
	if o.Concurrency < 0 {
		return fmt.Errorf("metricdb: concurrency must be >= 0, got %d", o.Concurrency)
	}
	if o.VAFileBits < 0 {
		return fmt.Errorf("metricdb: VA-file bits must be >= 0 (0 selects the default), got %d", o.VAFileBits)
	}
	if _, err := parseLayout(o.Layout); err != nil {
		return err
	}
	if o.QuantBits < 0 || o.QuantBits > 8 {
		return fmt.Errorf("metricdb: quant bits must be in [0, 8] (0 selects 8), got %d", o.QuantBits)
	}
	if o.QuantBits != 0 && o.Layout != "quant" {
		return fmt.Errorf("metricdb: QuantBits is only meaningful with Layout \"quant\", got layout %q", o.Layout)
	}
	if x := o.XTree; x != nil {
		if x.DirFanout < 0 {
			return fmt.Errorf("metricdb: X-tree directory fanout must be >= 0, got %d", x.DirFanout)
		}
		if x.MaxOverlap < 0 || x.MaxOverlap > 1 {
			return fmt.Errorf("metricdb: X-tree max overlap must be in [0, 1], got %g", x.MaxOverlap)
		}
		if x.MinFillRatio < 0 || x.MinFillRatio > 0.5 {
			return fmt.Errorf("metricdb: X-tree min fill ratio must be in [0, 0.5], got %g", x.MinFillRatio)
		}
		if x.ReinsertFraction < 0 || x.ReinsertFraction >= 1 {
			return fmt.Errorf("metricdb: X-tree reinsert fraction must be in [0, 1), got %g", x.ReinsertFraction)
		}
	}
	if p := o.Pivot; p != nil {
		if p.Pivots < 0 {
			return fmt.Errorf("metricdb: pivot count must be >= 0 (0 selects the default), got %d", p.Pivots)
		}
	}
	if p := o.PMTree; p != nil {
		if p.Pivots < 0 {
			return fmt.Errorf("metricdb: PM-tree pivot count must be >= 0 (0 selects the default), got %d", p.Pivots)
		}
		if p.Fanout != 0 && p.Fanout < 2 {
			return fmt.Errorf("metricdb: PM-tree fanout must be 0 (default) or >= 2, got %d", p.Fanout)
		}
	}
	return nil
}

// parseLayout maps the public layout string onto the processor's enum.
func parseLayout(s string) (msq.Layout, error) {
	switch s {
	case "", "aos":
		return msq.LayoutAoS, nil
	case "soa":
		return msq.LayoutSoA, nil
	case "f32":
		return msq.LayoutF32, nil
	case "quant":
		return msq.LayoutQuant, nil
	default:
		return 0, fmt.Errorf("metricdb: unknown layout %q (want aos, soa, f32, or quant)", s)
	}
}

// columnSpec translates the layout choice into the sibling representations
// the engine must materialize on each page, building the quantization grid
// from the data's coordinate bounds when the layout is "quant".
func (o Options) columnSpec(items []Item, dim int) (store.ColumnSpec, error) {
	layout, err := parseLayout(o.Layout)
	if err != nil {
		return store.ColumnSpec{}, err
	}
	switch layout {
	case msq.LayoutSoA:
		return store.ColumnSpec{Columnar: true}, nil
	case msq.LayoutF32:
		return store.ColumnSpec{Columnar: true, F32: true}, nil
	case msq.LayoutQuant:
		bits := o.QuantBits
		if bits == 0 {
			bits = 8
		}
		lo, hi := store.ItemCoordinateBounds(items, dim)
		grid, err := vec.BuildQuantGrid(bits, lo, hi)
		if err != nil {
			return store.ColumnSpec{}, fmt.Errorf("metricdb: %w", err)
		}
		return store.ColumnSpec{Columnar: true, Quant: grid}, nil
	default:
		return store.ColumnSpec{}, nil
	}
}

// withDefaults resolves the zero and sentinel values of validated options
// against a concrete database shape: nil Metric becomes Euclidean,
// PageCapacity 0 derives from a 32 KB block at the data's dimensionality,
// and the BufferPages sentinel (0 = the paper's 10 % default, negative =
// unbuffered) is resolved into the returned concrete page count. The
// returned options are fully explicit except BufferPages, which keeps its
// sentinel so the caller's intent remains readable from DB.Options-style
// introspection.
func (o Options) withDefaults(dim, nItems int) (Options, int) {
	if o.Metric == nil {
		o.Metric = Euclidean()
	}
	if o.Engine == "" {
		o.Engine = EngineScan
	}
	if o.PageCapacity == 0 {
		o.PageCapacity = store.PageCapacityForBlockSize(32768, dim)
	}
	bufferPages := o.BufferPages
	switch {
	case bufferPages == 0:
		bufferPages = store.DefaultBufferPages((nItems + o.PageCapacity - 1) / o.PageCapacity)
	case bufferPages < 0:
		bufferPages = 0
	}
	return o, bufferPages
}

// engineSpec translates resolved public options into the engine registry's
// request — the module's only bridge to engine construction. The options
// must already be defaulted (withDefaults); wrap may be nil.
func (o Options) engineSpec(items []Item, dim, bufferPages int, columns store.ColumnSpec,
	wrap func(store.PageSource) (store.PageSource, error)) engines.Spec {
	s := engines.Spec{
		Kind:         engines.Kind(o.Engine),
		Items:        items,
		Dim:          dim,
		Metric:       o.Metric,
		PageCapacity: o.PageCapacity,
		BufferPages:  bufferPages,
		Columns:      columns,
		WrapDisk:     wrap,
		VAFileBits:   o.VAFileBits,
	}
	if x := o.XTree; x != nil {
		s.XTree = &engines.XTreeTuning{
			DirFanout:        x.DirFanout,
			MaxOverlap:       x.MaxOverlap,
			MinFillRatio:     x.MinFillRatio,
			STRBulkLoad:      x.STRBulkLoad,
			ReinsertFraction: x.ReinsertFraction,
		}
	}
	if p := o.Pivot; p != nil {
		s.Pivots = p.Pivots
	}
	if p := o.PMTree; p != nil {
		if o.Engine == EnginePMTree {
			s.Pivots = p.Pivots
		}
		s.PMTreeFanout = p.Fanout
	}
	return s
}

// DB is a metric database ready to answer similarity queries. A DB is safe
// for concurrent single queries; batches (sessions) are single-goroutine.
type DB struct {
	items []Item
	dim   int
	eng   engine.Engine
	proc  *msq.Processor
	opts  Options
	// calib is the predicted-vs-observed calibration meter, nil unless
	// Options.Calibrate was set. Held by pointer so WithConcurrency's
	// struct copy shares one recorder.
	calib *calibMeter
	// closers holds the file-backed disks of a stored database; nil for
	// the in-memory databases Open builds.
	closers []io.Closer
}

// Open builds a database over items. Items must be numbered 0..n-1 (see
// NewItems) and dimensionally consistent; they are not copied. Options are
// checked with Options.Validate and defaulted with the documented sentinel
// rules before the engine is built.
func Open(items []Item, opts Options) (*DB, error) {
	dim, err := validateItems(items)
	if err != nil {
		return nil, err
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts, bufferPages := opts.withDefaults(dim, len(items))
	if opts.PageCapacity < 1 {
		return nil, fmt.Errorf("metricdb: page capacity must be >= 1, got %d", opts.PageCapacity)
	}

	columns, err := opts.columnSpec(items, dim)
	if err != nil {
		return nil, err
	}
	layout, err := parseLayout(opts.Layout)
	if err != nil {
		return nil, err
	}

	eng, err := engines.Build(opts.engineSpec(items, dim, bufferPages, columns, nil))
	if err != nil {
		return nil, err
	}

	proc, err := msq.New(eng, opts.Metric, msq.Options{Avoidance: opts.Avoidance, Concurrency: opts.Concurrency, Layout: layout})
	if err != nil {
		return nil, err
	}
	db := &DB{items: items, dim: dim, eng: eng, proc: proc, opts: opts}
	db.setupCalibration()
	return db, nil
}

// Len returns the number of stored items.
func (db *DB) Len() int { return len(db.items) }

// Dim returns the dimensionality of the stored vectors.
func (db *DB) Dim() int { return db.dim }

// Items returns the stored items. The slice is shared, not copied.
func (db *DB) Items() []Item { return db.items }

// Item returns the item with the given ID.
func (db *DB) Item(id ItemID) (Item, error) {
	if int(id) >= len(db.items) {
		return Item{}, fmt.Errorf("metricdb: no item %d in database of %d items", id, len(db.items))
	}
	return db.items[id], nil
}

// Engine returns the engine kind in use.
func (db *DB) Engine() EngineKind {
	if db.opts.Engine == "" {
		return EngineScan
	}
	return db.opts.Engine
}

// NumPages returns the number of data pages of the physical organization.
func (db *DB) NumPages() int { return db.eng.NumPages() }

// Query evaluates a single similarity query (the algorithm of Figure 1)
// and returns the answers in ascending distance order.
func (db *DB) Query(q Vector, t QueryType) ([]Answer, Stats, error) {
	return db.QueryContext(context.Background(), q, t)
}

// QueryContext is Query with cancellation: the page loop checks ctx once
// per data page and aborts with ctx's error when it is canceled or past its
// deadline. On the uncanceled path the context costs one check per page and
// perturbs neither answers nor statistics.
func (db *DB) QueryContext(ctx context.Context, q Vector, t QueryType) ([]Answer, Stats, error) {
	answers, stats, err := db.proc.SingleContext(ctx, q, t)
	if err != nil {
		return nil, stats, err
	}
	return answers.Answers(), stats, nil
}

// ResetCounters zeroes the I/O and distance counters and clears the page
// buffer, so a following measurement starts cold. It returns the I/O
// statistics accumulated so far.
func (db *DB) ResetCounters() store.IOStats {
	db.proc.Metric().Reset()
	return db.eng.Pager().ResetStats()
}

// IOStats returns the accumulated simulated-disk statistics.
func (db *DB) IOStats() store.IOStats { return db.eng.Pager().Disk().Stats() }

// Batch is a multiple-similarity-query session: partial answers and the
// inter-query distance matrix are buffered across calls. Not safe for
// concurrent use.
type Batch struct {
	db      *DB
	session *msq.Session
}

// NewBatch starts a session for incremental multiple similarity queries.
func (db *DB) NewBatch() *Batch {
	return &Batch{db: db, session: db.proc.NewSession()}
}

// Query evaluates a multiple similarity query per Definition 4: the
// answers for queries[0] are complete; those of the remaining queries are
// correct partial results, completed by later calls that list them first.
// The returned answer slices are aligned with queries.
func (b *Batch) Query(queries []Query) ([][]Answer, Stats, error) {
	return b.QueryContext(context.Background(), queries)
}

// QueryContext is Query with cancellation: the page loop checks ctx once
// per data page. An aborted call keeps the partial answers collected so far
// buffered in the batch, so a later call resumes rather than restarts.
func (b *Batch) QueryContext(ctx context.Context, queries []Query) ([][]Answer, Stats, error) {
	lists, stats, err := b.session.MultiQueryContext(ctx, queries)
	if err != nil {
		return nil, stats, err
	}
	out := make([][]Answer, len(lists))
	for i, l := range lists {
		out[i] = l.Answers()
	}
	return out, stats, nil
}

// QueryAll evaluates the whole batch to completion, reusing every page and
// buffered answer across the queries.
func (b *Batch) QueryAll(queries []Query) ([][]Answer, Stats, error) {
	return b.QueryAllContext(context.Background(), queries)
}

// QueryAllContext is QueryAll with cancellation (see QueryContext for the
// resume-after-abort semantics).
func (b *Batch) QueryAllContext(ctx context.Context, queries []Query) ([][]Answer, Stats, error) {
	m := b.db.calib
	var begin time.Time
	var kern0, fetch0 int64
	if m != nil {
		begin = time.Now()
		kern0, fetch0 = m.phaseSums(b.db.proc)
	}
	lists, stats, err := b.session.MultiQueryAllContext(ctx, queries)
	if err != nil {
		return nil, stats, err
	}
	if m != nil {
		kern1, fetch1 := m.phaseSums(b.db.proc)
		m.record(queries, stats, time.Since(begin), kern1-kern0, fetch1-fetch0)
	}
	out := make([][]Answer, len(lists))
	for i, l := range lists {
		out[i] = l.Answers()
	}
	return out, stats, nil
}

// Explain is a per-batch EXPLAIN profile: per-query work attribution
// (pages visited, distance calculations, Lemma 1 vs Lemma 2 avoidance,
// early-abandoned kernels), buffer-pool hit/miss/eviction deltas, and wall
// time per processing phase. Obtain one with DB.Explain or
// DB.ExplainContext.
type Explain = msq.Explain

// Profile is the per-query slice of an Explain.
type Profile = msq.Profile

// Explain evaluates the batch to completion like Batch.QueryAll while
// attributing the work to each query position. The answers and Stats
// embedded in the profile are bit-identical to an unprofiled run.
func (db *DB) Explain(queries []Query) (*Explain, error) {
	return db.ExplainContext(context.Background(), queries)
}

// ExplainContext is Explain bounded by ctx (checked once per data page).
// With calibration enabled the profile additionally carries the advisor's
// predicted-cost rows (raw model and, once samples exist, calibrated) next
// to the observed counters, and the run is recorded as a calibration
// sample with its exact phase split.
func (db *DB) ExplainContext(ctx context.Context, queries []Query) (*Explain, error) {
	ex, err := db.proc.ExplainContext(ctx, queries)
	if err != nil {
		return ex, err
	}
	if m := db.calib; m != nil {
		m.annotateExplain(ex, queries)
		m.record(queries, ex.Stats, time.Duration(ex.WallNs),
			ex.PhaseNs[obs.PhaseKernel.String()], ex.PhaseNs[obs.PhasePageFetch.String()])
	}
	return ex, nil
}

// Ranking is an incremental nearest-neighbor iterator: objects are emitted
// in ascending distance, reading data pages lazily (the Hjaltason–Samet
// ranking the paper's page scheduling is based on). Obtain one with
// DB.Ranking; call Next until ok is false.
type Ranking = msq.Ranking

// Ranking starts an incremental nearest-neighbor ranking from q. Stopping
// after k results costs exactly what an optimal k-NN query costs, without
// fixing k in advance.
func (db *DB) Ranking(q Vector) (*Ranking, error) {
	return db.proc.Ranking(q)
}

// ProcessorStats is a point-in-time view of the query processor: its active
// configuration and the cumulative distance-calculation counters since Open
// (or the last ResetCounters). Unlike the per-call Stats, these counters
// aggregate over every query, batch, and mining method on the DB.
type ProcessorStats struct {
	// Avoidance is the active triangle-inequality mode.
	Avoidance AvoidanceMode
	// Concurrency is the effective intra-server pipeline width (>= 1).
	Concurrency int
	// Layout names the page representation the distance loops consume
	// ("aos", "soa", "f32", or "quant").
	Layout string
	// DistCalcs counts distance calculations, including ones abandoned
	// mid-vector by the bounded kernel.
	DistCalcs int64
	// PartialAbandoned counts the abandoned subset of DistCalcs.
	PartialAbandoned int64
	// PivotDistCalcs counts the query-to-pivot setup distances of the
	// pivot-filtering engines (zero for engines without a pivot phase).
	PivotDistCalcs int64
	// QuantFiltered counts the (query, item) pairs lossy filters excluded
	// without a distance calculation (quant layout, VA-file bounds).
	QuantFiltered int64
	// Calibration is the advisor calibration snapshot (without the sample
	// ring); nil unless the DB was opened with Options.Calibrate.
	Calibration *CalibrationStats
}

// ProcessorStats reports the processor's configuration and cumulative work.
func (db *DB) ProcessorStats() ProcessorStats {
	ps := ProcessorStats{
		Avoidance:        db.proc.Options().Avoidance,
		Concurrency:      db.proc.Concurrency(),
		Layout:           db.proc.Options().Layout.String(),
		DistCalcs:        db.proc.Metric().Count(),
		PartialAbandoned: db.proc.Metric().Abandoned(),
		QuantFiltered:    db.proc.Metric().Filtered(),
	}
	if pc, ok := db.eng.(engine.PivotCoster); ok {
		ps.PivotDistCalcs = pc.PivotDistCalcs()
	}
	if db.calib != nil {
		snap := db.calib.rec.Snapshot(0)
		ps.Calibration = &snap
	}
	return ps
}

// WithConcurrency returns a DB sharing this DB's storage, buffer, and
// counters but answering batches at the given intra-server pipeline width
// (0 and 1 select the sequential path). It is the tuning facade for serving
// layers that pin widths per workload; answers are bit-identical at every
// width.
func (db *DB) WithConcurrency(n int) *DB {
	ndb := *db
	ndb.proc = db.proc.WithConcurrency(n)
	ndb.opts.Concurrency = ndb.proc.Options().Concurrency
	return &ndb
}

// Processor exposes the underlying multiple-similarity-query processor for
// in-module integrations such as the wire server.
//
// Deprecated: Processor leaks the internal msq package through the public
// API, so code outside this module cannot use the returned value. Use
// Query/QueryContext, NewBatch, ProcessorStats, and WithConcurrency
// instead; in-module integrations (cmd/msqserver) remain the only
// sanctioned callers.
func (db *DB) Processor() *msq.Processor { return db.proc }
