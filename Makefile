.PHONY: check fmt vet build test race bench

# The pre-PR gate: formatting, static analysis, build, race-enabled tests.
check: fmt vet build race

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	go vet ./...

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

bench:
	go test -bench=. -benchmem -run=^$$
