.PHONY: check fmt vet build test race differential obsgate fuzz-smoke bench bench-all bench-compare

# The pre-PR gate: formatting, static analysis, build, race-enabled tests,
# the multi-query differential suite under the race detector, the
# disabled-hooks overhead gate, and a short fuzz of the storage decoders.
check: fmt vet build race differential obsgate fuzz-smoke

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	go vet ./...

build:
	go build ./...

# Tier-1: the fast suite. -short skips the stress tests and trims the
# property-test rounds; the differential harness itself always runs.
test:
	go test -short ./...

race:
	go test -race ./...

# The pipeline determinism gate: differential (width 1 vs 2 vs 8), Lemma
# 1/2 soundness properties, the bounded-kernel contract properties, the
# session/pager stress tests, and the store concurrency tests — all under
# the race detector.
differential:
	go test -race -count=1 -run 'TestDifferential|TestLemma|TestStress|TestDistanceWithin|TestMinkowski|TestBufferConcurrency|TestDiskConcurrent|TestPagerSingleflight' \
		./internal/msq/ ./internal/store/ ./internal/vec/

# A short fuzz of the persistent-storage decoders: corrupt page records
# and manifests must produce errors, never panics or over-allocation. The
# committed seed corpora cover the interesting boundaries; 30 seconds per
# target explores beyond them on every check.
fuzz-smoke:
	go test -run='^$$' -fuzz=FuzzPageDecode -fuzztime=30s ./internal/store/
	go test -run='^$$' -fuzz=FuzzManifestDecode -fuzztime=30s ./internal/store/
	go test -run='^$$' -fuzz=FuzzColumnarPageDecode -fuzztime=30s ./internal/store/
	go test -run='^$$' -fuzz=FuzzTableDecode -fuzztime=30s ./internal/pivot/

# The observability overhead gate: with no tracer installed, the hooked
# page loop must run within 2% of the bare loop. Timing-sensitive, so it
# runs without the race detector (under -race the test skips itself).
obsgate:
	go test -count=1 -run TestDisabledHookOverhead ./internal/obs/

# The perf gate for the hot path: kernel microbenchmarks (full Distance vs
# bounded DistanceWithin, with allocation counts for the scratch-reuse
# check), then the end-to-end artifacts — the kernels experiment
# (BENCH_kernels.json), the intra pipeline sweep
# (BENCH_parallel_intra.json) and the phase-latency profile
# (BENCH_obs.json).
bench:
	go test -bench='BenchmarkDistance|BenchmarkSortRefs|BenchmarkMultiQueryAll' -benchmem -run=^$$ \
		./internal/vec/ ./internal/vafile/ ./internal/msq/
	go run ./cmd/msqbench -experiment kernels
	go run ./cmd/msqbench -experiment intra
	go run ./cmd/msqbench -experiment obs
	go run ./cmd/msqbench -experiment distobs
	go run ./cmd/msqbench -experiment load
	go run ./cmd/msqbench -experiment storage
	go run ./cmd/msqbench -experiment block
	go run ./cmd/msqbench -experiment engines
	go run ./cmd/msqbench -experiment advisor

# Every benchmark in the repository, including the paper-figure suites.
bench-all:
	go test -bench=. -benchmem -run=^$$ ./...

# The regression gate: regenerate every BENCH_*.json artifact into a
# scratch directory and diff it against the committed baseline with
# benchcompare, failing on a >10% regression of any scale-free metric
# (identity verdicts, speedups, avoidance counters, pages read, and the
# advisor's calibrated prediction error). Raw
# wall-clock numbers are machine-dependent and are not compared;
# speedups, being wall-clock ratios, are judged against a wider 50%
# band: back-to-back runs of one binary on a busy single-core runner
# swing individual kernel speedup rows by ±26%, so a tighter band
# flakes on noise instead of catching regressions (the deterministic
# counters, which catch real work regressions exactly, stay at 10%).
bench-compare:
	@rm -rf .bench-fresh && mkdir -p .bench-fresh
	go run ./cmd/msqbench -experiment kernels -kernels-out .bench-fresh/BENCH_kernels.json > /dev/null
	go run ./cmd/msqbench -experiment intra -intra-out .bench-fresh/BENCH_parallel_intra.json > /dev/null
	go run ./cmd/msqbench -experiment obs -obs-out .bench-fresh/BENCH_obs.json > /dev/null
	go run ./cmd/msqbench -experiment distobs -distobs-out .bench-fresh/BENCH_distobs.json > /dev/null
	go run ./cmd/msqbench -experiment load -load-out .bench-fresh/BENCH_load.json > /dev/null
	go run ./cmd/msqbench -experiment storage -storage-out .bench-fresh/BENCH_storage.json > /dev/null
	go run ./cmd/msqbench -experiment block -block-out .bench-fresh/BENCH_block.json > /dev/null
	go run ./cmd/msqbench -experiment engines -engines-out .bench-fresh/BENCH_engines.json > /dev/null
	go run ./cmd/msqbench -experiment advisor -advisor-out .bench-fresh/BENCH_advisor.json > /dev/null
	go run ./cmd/benchcompare -tolerance 0.10 -speedup-tolerance 0.50 \
		BENCH_kernels.json .bench-fresh/BENCH_kernels.json \
		BENCH_parallel_intra.json .bench-fresh/BENCH_parallel_intra.json \
		BENCH_obs.json .bench-fresh/BENCH_obs.json \
		BENCH_distobs.json .bench-fresh/BENCH_distobs.json \
		BENCH_load.json .bench-fresh/BENCH_load.json \
		BENCH_storage.json .bench-fresh/BENCH_storage.json \
		BENCH_block.json .bench-fresh/BENCH_block.json \
		BENCH_engines.json .bench-fresh/BENCH_engines.json \
		BENCH_advisor.json .bench-fresh/BENCH_advisor.json
