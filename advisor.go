package metricdb

import (
	"fmt"

	"metricdb/internal/dataset"
)

// Advice is the result of analyzing a dataset for physical design.
type Advice struct {
	// IntrinsicDim is the estimated intrinsic dimensionality of the data
	// (Levina–Bickel MLE); real feature data usually has a much lower
	// intrinsic than ambient dimension.
	IntrinsicDim float64
	// AmbientDim is the stored vector dimensionality.
	AmbientDim int
	// Engine is the recommended physical organization.
	Engine EngineKind
	// Reason explains the recommendation in one sentence.
	Reason string
}

// Advise estimates the dataset's intrinsic dimensionality and recommends a
// physical organization following the paper's own guidance: tree indexes
// pay off while the (intrinsic) dimensionality is moderate; beyond that
// the approximation scan (VA-file) and finally the plain scan win —
// especially under multiple similarity queries, which favor scans further.
//
// The estimate uses a seeded sample, so Advise is deterministic and cheap
// (independent of the database size beyond a bounded sample).
func Advise(items []Item, seed int64) (Advice, error) {
	if _, err := validateItems(items); err != nil {
		return Advice{}, err
	}
	a := Advice{AmbientDim: items[0].Vec.Dim()}
	est, err := dataset.EstimateIntrinsicDimension(items, 100, 10, seed)
	if err != nil {
		// Degenerate data (e.g. massive duplication): nothing for an
		// index to exploit.
		a.Engine = EngineScan
		a.Reason = fmt.Sprintf("intrinsic dimensionality undefined (%v); sequential scan is the robust choice", err)
		return a, nil
	}
	a.IntrinsicDim = est
	switch {
	case est <= 10:
		a.Engine = EngineXTree
		a.Reason = fmt.Sprintf("estimated intrinsic dimensionality %.1f is moderate; a tree index retains selectivity", est)
	case est <= 16:
		a.Engine = EngineVAFile
		a.Reason = fmt.Sprintf("estimated intrinsic dimensionality %.1f is high; the approximation scan beats both tree and plain scan", est)
	default:
		a.Engine = EngineScan
		a.Reason = fmt.Sprintf("estimated intrinsic dimensionality %.1f leaves no index selectivity; sequential scan with multiple similarity queries wins", est)
	}
	return a, nil
}
