package metricdb

import (
	"fmt"

	"metricdb/internal/cost"
	"metricdb/internal/dataset"
	"metricdb/internal/query"
)

// Candidate is one engine's predicted cost for a concrete batch: counted
// work (pages, distance calculations) and its priced I/O/CPU split.
type Candidate = cost.EngineEstimate

// Advice is the result of analyzing a dataset — and optionally a batch —
// for physical design.
type Advice struct {
	// IntrinsicDim is the estimated intrinsic dimensionality of the data
	// (Levina–Bickel MLE); real feature data usually has a much lower
	// intrinsic than ambient dimension.
	IntrinsicDim float64 `json:"intrinsic_dim"`
	// AmbientDim is the stored vector dimensionality.
	AmbientDim int `json:"ambient_dim"`
	// Engine is the recommended physical organization.
	Engine EngineKind `json:"engine"`
	// Reason explains the recommendation in one sentence.
	Reason string `json:"reason"`
	// Warning carries a non-fatal estimator failure (for example the
	// intrinsic-dimension MLE degenerating on duplicated data). The
	// recommendation then rests on a fallback; callers that log should
	// surface it rather than drop it.
	Warning string `json:"warning,omitempty"`
	// Candidates holds every engine's predicted batch cost, cheapest
	// first, when the advice was computed for a concrete batch
	// (AdviseBatch); nil for dataset-only advice.
	Candidates []Candidate `json:"candidates,omitempty"`
	// Calibrated holds the same candidates after the database's
	// calibration recorder applied its learned per-engine correction
	// factors, re-ranked by corrected total. Present only on DB.AdviseBatch
	// with calibration enabled and at least one recorded sample.
	Calibrated []Candidate `json:"calibrated,omitempty"`
}

// Advise estimates the dataset's intrinsic dimensionality and recommends a
// physical organization following the paper's own guidance: tree indexes
// pay off while the (intrinsic) dimensionality is moderate; beyond that
// the approximation scan (VA-file) and finally the plain scan win —
// especially under multiple similarity queries, which favor scans further.
//
// The estimate uses a seeded sample, so Advise is deterministic and cheap
// (independent of the database size beyond a bounded sample). When the
// estimator fails (degenerate data), the advice falls back to the scan and
// the failure is reported in Advice.Warning.
func Advise(items []Item, seed int64) (Advice, error) {
	if _, err := validateItems(items); err != nil {
		return Advice{}, err
	}
	a := Advice{AmbientDim: items[0].Vec.Dim()}
	est, err := dataset.EstimateIntrinsicDimension(items, 100, 10, seed)
	if err != nil {
		// Degenerate data (e.g. massive duplication): nothing for an
		// index to exploit.
		a.Engine = EngineScan
		a.Reason = "intrinsic dimensionality undefined; sequential scan is the robust choice"
		a.Warning = fmt.Sprintf("intrinsic-dimension estimate failed: %v", err)
		return a, nil
	}
	a.IntrinsicDim = est
	switch {
	case est <= 10:
		a.Engine = EngineXTree
		a.Reason = fmt.Sprintf("estimated intrinsic dimensionality %.1f is moderate; a tree index retains selectivity", est)
	case est <= 16:
		a.Engine = EngineVAFile
		a.Reason = fmt.Sprintf("estimated intrinsic dimensionality %.1f is high; the approximation scan beats both tree and plain scan", est)
	default:
		a.Engine = EngineScan
		a.Reason = fmt.Sprintf("estimated intrinsic dimensionality %.1f leaves no index selectivity; sequential scan with multiple similarity queries wins", est)
	}
	return a, nil
}

// advisorSampleItems bounds the distance sampling AdviseBatch performs to
// measure range-query selectivity.
const advisorSampleItems = 256

// AdviseBatch recommends an engine for a concrete batch: the dataset's
// intrinsic dimensionality AND the batch's shape (how many queries, their
// cardinalities and radii, the metric) are priced through the cost model of
// internal/cost, and every registered engine's predicted cost is returned
// in Advice.Candidates, cheapest first. This is the per-batch counterpart
// of Advise: a dataset whose intrinsics favor a tree can still be served
// cheaper by the scan when the batch is large (the shared sweep amortizes
// m-fold), and by the pivot table in between.
//
// The prediction uses the paper-testbed cost constants at the dataset's
// dimensionality, a seeded bounded sample for measurements, and no
// randomness — the same inputs always produce the same advice.
func AdviseBatch(items []Item, queries []Query, opts Options, seed int64) (Advice, error) {
	dim, err := validateItems(items)
	if err != nil {
		return Advice{}, err
	}
	if len(queries) == 0 {
		return Advice{}, fmt.Errorf("metricdb: empty batch")
	}
	for i := range queries {
		if err := queries[i].Type.Validate(); err != nil {
			return Advice{}, fmt.Errorf("metricdb: batch query %d: %w", i, err)
		}
	}
	if err := opts.Validate(); err != nil {
		return Advice{}, err
	}
	opts, _ = opts.withDefaults(dim, len(items))

	a := Advice{AmbientDim: dim}
	intrinsic, err := dataset.EstimateIntrinsicDimension(items, 100, 10, seed)
	if err != nil {
		// Price with the ambient dimension and say so: degenerate data
		// usually means the scan wins anyway, and the caller deserves to
		// know the estimate is a fallback.
		a.Warning = fmt.Sprintf("intrinsic-dimension estimate failed: %v; pricing with ambient dimension %d", err, dim)
		intrinsic = float64(dim)
	}
	a.IntrinsicDim = intrinsic

	shape := batchShape(items, queries, opts, intrinsic)
	cands, err := cost.PaperModel(dim).EstimateBatch(shape)
	if err != nil {
		return Advice{}, fmt.Errorf("metricdb: %w", err)
	}
	a.Candidates = cands
	a.Engine = EngineKind(cands[0].Engine)
	a.Reason = fmt.Sprintf("cheapest predicted cost for %d queries at intrinsic dimensionality %.1f (%v vs %v runner-up)",
		len(queries), intrinsic, cands[0].Total, cands[1].Total)
	return a, nil
}

// batchShape assembles the cost model's input for one batch: its width,
// the dataset's size/paging, the intrinsic-dimension estimate, and the
// batch's measured or modeled selectivity. The calibration recorder uses
// the same helper, so recorded predictions are the predictions AdviseBatch
// would have served.
func batchShape(items []Item, queries []Query, opts Options, intrinsic float64) cost.BatchShape {
	shape := cost.BatchShape{
		Queries:      len(queries),
		Items:        len(items),
		PageCapacity: opts.PageCapacity,
		IntrinsicDim: intrinsic,
		MeanK:        batchMeanK(queries, len(items)),
		Selectivity:  batchRangeSelectivity(items, queries, opts.Metric),
	}
	if opts.Pivot != nil {
		shape.Pivots = opts.Pivot.Pivots
	}
	return shape
}

// AdviseBatch prices this database's own items, metric, and page capacity
// against the batch. See the package-level AdviseBatch. When the database
// was opened with Options.Calibrate and has recorded at least one batch,
// the advice additionally carries the calibrated ranking in
// Advice.Calibrated.
func (db *DB) AdviseBatch(queries []Query, seed int64) (Advice, error) {
	a, err := AdviseBatch(db.items, queries, db.opts, seed)
	if err != nil {
		return a, err
	}
	if db.calib != nil && db.calib.rec.Samples() > 0 {
		a.Calibrated = db.calib.rec.Calibrate(a.Candidates)
	}
	return a, nil
}

// batchMeanK returns the mean answer cardinality of the batch's bounded
// queries, defaulting to 1 when the batch is all range queries (their
// cardinality is unbounded; selectivity sampling covers them instead).
func batchMeanK(queries []Query, n int) float64 {
	var sum, cnt float64
	for i := range queries {
		t := queries[i].Type
		if t.Bounded() && t.Cardinality > 0 {
			k := t.Cardinality
			if k > n {
				k = n
			}
			sum += float64(k)
			cnt++
		}
	}
	if cnt == 0 {
		return 1
	}
	return sum / cnt
}

// batchRangeSelectivity measures the mean fraction of items a range query
// captures, from real distances on a bounded deterministic sample (every
// stride-th item, every query). It returns 0 — "not measured, use the
// model" — when the batch has no pure range queries.
func batchRangeSelectivity(items []Item, queries []Query, metric Metric) float64 {
	stride := (len(items) + advisorSampleItems - 1) / advisorSampleItems
	if stride < 1 {
		stride = 1
	}
	var sum float64
	var ranges int
	for qi := range queries {
		t := queries[qi].Type
		if t.Kind != query.Range {
			continue
		}
		ranges++
		within, sampled := 0, 0
		for i := 0; i < len(items); i += stride {
			sampled++
			if metric.Distance(queries[qi].Vec, items[i].Vec) <= t.Range {
				within++
			}
		}
		if sampled > 0 {
			sum += float64(within) / float64(sampled)
		}
	}
	if ranges == 0 {
		return 0
	}
	return sum / float64(ranges)
}
