package metricdb_test

import (
	"context"
	"fmt"
	"log"
	"time"

	"metricdb"
)

// grid builds a deterministic toy database: points on a line.
func grid(n int) []metricdb.Item {
	vectors := make([]metricdb.Vector, n)
	for i := range vectors {
		vectors[i] = metricdb.Vector{float64(i), 0}
	}
	return metricdb.NewItems(vectors)
}

// ExampleOpen shows a single similarity query.
func ExampleOpen() {
	db, err := metricdb.Open(grid(100), metricdb.Options{Engine: metricdb.EngineScan})
	if err != nil {
		log.Fatal(err)
	}
	answers, _, err := db.Query(metricdb.Vector{10.2, 0}, metricdb.KNNQuery(3))
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range answers {
		fmt.Printf("item %d at distance %.1f\n", a.ID, a.Dist)
	}
	// Output:
	// item 10 at distance 0.2
	// item 11 at distance 0.8
	// item 9 at distance 1.2
}

// ExampleBatch_Query demonstrates the incremental multiple similarity
// query: the first query is answered completely, the second only
// partially, and a later call completes it from the session buffer.
func ExampleBatch_Query() {
	db, err := metricdb.Open(grid(100), metricdb.Options{PageCapacity: 10})
	if err != nil {
		log.Fatal(err)
	}
	batch := db.NewBatch()
	queries := []metricdb.Query{
		{ID: 1, Vec: metricdb.Vector{5, 0}, Type: metricdb.RangeQuery(1)},
		{ID: 2, Vec: metricdb.Vector{50, 0}, Type: metricdb.RangeQuery(1)},
	}
	results, _, err := batch.Query(queries)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first query: %d answers (complete)\n", len(results[0]))

	// Completing the second query reuses everything already buffered.
	results2, stats, err := batch.Query(queries[1:])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("second query: %d answers, %d additional distance calculations\n",
		len(results2[0]), stats.DistCalcs)
	// Output:
	// first query: 3 answers (complete)
	// second query: 3 answers, 0 additional distance calculations
}

// ExampleDB_DBSCAN clusters two well-separated groups.
func ExampleDB_DBSCAN() {
	var vectors []metricdb.Vector
	for i := 0; i < 10; i++ {
		vectors = append(vectors, metricdb.Vector{float64(i) * 0.1, 0})   // group A
		vectors = append(vectors, metricdb.Vector{float64(i) * 0.1, 100}) // group B
	}
	vectors = append(vectors, metricdb.Vector{50, 50}) // isolated noise

	db, err := metricdb.Open(metricdb.NewItems(vectors), metricdb.Options{PageCapacity: 8})
	if err != nil {
		log.Fatal(err)
	}
	res, err := db.DBSCAN(0.5, 3, 4)
	if err != nil {
		log.Fatal(err)
	}
	noise := 0
	for _, l := range res.Labels {
		if l == metricdb.DBSCANNoise {
			noise++
		}
	}
	fmt.Printf("%d clusters, %d noise object(s)\n", res.Clusters, noise)
	// Output:
	// 2 clusters, 1 noise object(s)
}

// ExampleNewMTree indexes strings under a custom metric.
func ExampleNewMTree() {
	hamming := func(a, b string) float64 {
		n := 0
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				n++
			}
		}
		diff := len(a) - len(b)
		if diff < 0 {
			diff = -diff
		}
		return float64(n + diff)
	}
	tree, err := metricdb.NewMTree(hamming, 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, w := range []string{"karolin", "kathrin", "kerstin", "monika"} {
		tree.Insert(w)
	}
	for _, r := range tree.KNN("karolin", 2) {
		fmt.Printf("%s (distance %.0f)\n", r.Obj, r.Dist)
	}
	// Output:
	// karolin (distance 0)
	// kathrin (distance 3)
}

// ExampleDB_QueryContext bounds a similarity query with a timeout. The
// page loop checks the context once per data page, so a deadline or a
// cancellation aborts the query cleanly without affecting the database.
func ExampleDB_QueryContext() {
	db, err := metricdb.Open(grid(100), metricdb.Options{})
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	answers, _, err := db.QueryContext(ctx, metricdb.Vector{42.4, 0}, metricdb.KNNQuery(2))
	if err != nil {
		log.Fatal(err) // context.DeadlineExceeded once the budget is spent
	}
	for _, a := range answers {
		fmt.Printf("item %d at distance %.1f\n", a.ID, a.Dist)
	}
	// Output:
	// item 42 at distance 0.4
	// item 43 at distance 0.6
}
