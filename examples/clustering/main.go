// Density-based clustering (DBSCAN) driven by multiple similarity queries:
// the ExploreNeighborhoodsMultiple transformation in action. The cluster
// expansion issues its range queries in batches, prefetching the pending
// seed objects' neighborhoods from the pages that are being read anyway.
package main

import (
	"fmt"
	"log"

	"metricdb"
	"metricdb/internal/dataset"
)

func main() {
	items, err := dataset.Clustered(dataset.ClusteredConfig{
		Seed: 11, N: 20000, Dim: 8, Clusters: 6, Spread: 0.03, NoiseFraction: 0.08,
	})
	if err != nil {
		log.Fatal(err)
	}
	db, err := metricdb.Open(items, metricdb.Options{Engine: metricdb.EngineXTree})
	if err != nil {
		log.Fatal(err)
	}

	const eps, minPts = 0.10, 6
	fmt.Printf("DBSCAN(eps=%g, minPts=%d) over %d objects, %d pages\n\n", eps, minPts, db.Len(), db.NumPages())

	for _, batch := range []int{1, 10, 50} {
		db.ResetCounters()
		res, err := db.DBSCAN(eps, minPts, batch)
		if err != nil {
			log.Fatal(err)
		}
		sizes := make(map[int]int)
		noise := 0
		for _, l := range res.Labels {
			if l == metricdb.DBSCANNoise {
				noise++
			} else {
				sizes[l]++
			}
		}
		fmt.Printf("batch m=%2d: %d clusters, %d noise | %d range queries, %d pages read, %d distance calcs (%d avoided)\n",
			batch, res.Clusters, noise, res.Stats.Steps,
			res.Stats.Query.PagesRead, res.Stats.Query.TotalDistCalcs(), res.Stats.Query.Avoided)
	}
	fmt.Println("\nthe clustering result is identical for every batch size — only the cost changes")
}
