// Shared-nothing parallel multiple similarity queries (§5.3): the database
// is declustered over s servers, each answering every query against its
// partition; with s servers the block size grows to m·s, so the speed-up
// can exceed s.
package main

import (
	"fmt"
	"log"

	"metricdb"
	"metricdb/internal/dataset"
)

func main() {
	items, err := dataset.NearUniform(31, 60000, 20, 8, 0.01)
	if err != nil {
		log.Fatal(err)
	}

	// Sequential baseline: one server, one block of m = 100 queries.
	const baseM, k = 100, 10
	queries := make([]metricdb.Query, 0, baseM*8)
	qi, err := dataset.SampleQueries(5, items, baseM*8)
	if err != nil {
		log.Fatal(err)
	}
	for _, it := range qi {
		queries = append(queries, metricdb.Query{ID: uint64(it.ID), Vec: it.Vec, Type: metricdb.KNNQuery(k)})
	}

	db, err := metricdb.Open(items, metricdb.Options{Engine: metricdb.EngineScan})
	if err != nil {
		log.Fatal(err)
	}
	_, seqStats, err := db.NewBatch().QueryAll(queries[:baseM])
	if err != nil {
		log.Fatal(err)
	}
	seqPagesPerQuery := float64(seqStats.PagesRead) / float64(baseM)
	fmt.Printf("sequential (s=1, m=%d): %.2f pages/query on the busiest (only) server\n", baseM, seqPagesPerQuery)

	for _, s := range []int{2, 4, 8} {
		cluster, err := metricdb.OpenCluster(items, metricdb.ClusterOptions{
			Servers: s,
			Engine:  metricdb.EngineScan,
		})
		if err != nil {
			log.Fatal(err)
		}
		// s-times the memory: the block grows to m·s queries.
		block := queries[:baseM*s]
		answers, rep, err := cluster.QueryAll(block)
		if err != nil {
			log.Fatal(err)
		}
		perQuery := float64(rep.MaxPagesRead()) / float64(len(block))
		fmt.Printf("parallel  (s=%d, m=%d): %.2f pages/query on the busiest server -> I/O speed-up %.1fx\n",
			s, len(block), perQuery, seqPagesPerQuery/perQuery)
		_ = answers
	}

	// Correctness spot check: parallel answers equal sequential answers.
	want, _, err := db.Query(queries[0].Vec, queries[0].Type)
	if err != nil {
		log.Fatal(err)
	}
	cluster, err := metricdb.OpenCluster(items, metricdb.ClusterOptions{Servers: 4})
	if err != nil {
		log.Fatal(err)
	}
	got, _, err := cluster.Query(queries[0].Vec, queries[0].Type)
	if err != nil {
		log.Fatal(err)
	}
	same := len(got) == len(want)
	for i := 0; same && i < len(got); i++ {
		same = got[i] == want[i]
	}
	fmt.Printf("\nparallel answers identical to sequential answers: %v\n", same)
}
