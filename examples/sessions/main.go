// General metric data without vectors: WWW-access sessions compared by
// edit distance, indexed with the M-tree, and queried with batched range
// queries that share the traversal and avoid distance calculations via
// Lemmas 1 and 2 — the paper's "general case of metric databases".
package main

import (
	"fmt"
	"log"

	"metricdb"
	"metricdb/internal/dataset"
)

// editDistance is the Levenshtein distance, a metric on strings.
func editDistance(a, b string) float64 {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j] + 1
			if c := cur[j-1] + 1; c < m {
				m = c
			}
			if c := prev[j-1] + cost; c < m {
				m = c
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return float64(prev[len(b)])
}

func main() {
	sessions := dataset.Sessions(5, 4000)
	tree, err := metricdb.NewMTree(editDistance, 32)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range sessions {
		tree.Insert(s)
	}
	fmt.Printf("indexed %d WWW sessions in an M-tree of height %d\n\n", tree.Len(), tree.Height())

	// A single range query.
	q := "/shop/cart/pay"
	tree.ResetDistCalcs()
	hits := tree.Range(q, 4)
	fmt.Printf("sessions within edit distance 4 of %q: %d (using %d of %d possible distance calcs)\n",
		q, len(hits), tree.DistCalcs(), tree.Len())
	for i, h := range hits {
		if i == 5 {
			fmt.Printf("  ... and %d more\n", len(hits)-5)
			break
		}
		fmt.Printf("  %-28s dist %.0f\n", h.Obj, h.Dist)
	}

	// Nearest neighbors of a session that is not in the database.
	nn := tree.KNN("/shop/cart/payy/99", 3)
	fmt.Println("\n3 nearest sessions to \"/shop/cart/payy/99\":")
	for _, r := range nn {
		fmt.Printf("  %-28s dist %.0f\n", r.Obj, r.Dist)
	}

	// A batch of related queries, evaluated in one shared traversal.
	queries := []string{"/shop/cart", "/shop/cart/pay", "/shop/item/7", "/shop/list"}
	tree.ResetDistCalcs()
	var singleCalcs int64
	for _, q := range queries {
		_ = tree.Range(q, 4)
	}
	singleCalcs = tree.ResetDistCalcs()

	results, stats := tree.BatchRange(queries, 4)
	fmt.Printf("\nbatched range queries for %d related sessions:\n", len(queries))
	for i, q := range queries {
		fmt.Printf("  %-18s %3d answers\n", q, len(results[i]))
	}
	fmt.Printf("distance calcs: %d single vs %d batched (+%d matrix), %d avoided by the triangle inequality\n",
		singleCalcs, stats.DistCalcs, stats.MatrixCalcs, stats.Avoided)
}
