// Manual data exploration by concurrent users — the paper's image-database
// workload (§6): each of c users repeatedly picks one of their k current
// answers; the system prefetches the k-NN of all current answers as one
// block of m = c·k multiple similarity queries per round.
//
// The example also demonstrates the general ExploreNeighborhoods framework
// directly, with custom hooks.
package main

import (
	"fmt"
	"log"

	"metricdb"
	"metricdb/internal/dataset"
)

func main() {
	// A small "image database": clustered 64-d color histograms.
	items, err := dataset.Clustered(dataset.ClusteredConfig{
		Seed: 21, N: 15000, Dim: 64, Clusters: 12, Spread: 0.03, Histogram: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	db, err := metricdb.Open(items, metricdb.Options{Engine: metricdb.EngineScan})
	if err != nil {
		log.Fatal(err)
	}

	// Part 1: the simulated multi-user exploration session.
	fmt.Println("simulated exploration: 5 users x 6 rounds of 20-NN navigation")
	stats, err := db.SimulateExploration(metricdb.ExplorationConfig{
		Users: 5, K: 20, Rounds: 6, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	perQuery := float64(stats.Query.PagesRead) / float64(stats.Steps)
	fmt.Printf("  %d k-NN queries answered with %d page reads (%.2f pages/query on a %d-page database)\n",
		stats.Steps, stats.Query.PagesRead, perQuery, db.NumPages())
	fmt.Printf("  %d distance calcs, %d avoided by the triangle inequality\n\n",
		stats.Query.TotalDistCalcs(), stats.Query.Avoided)

	// Part 2: a custom exploration with the generic framework — walk
	// outward from one image, following only very similar answers, and
	// collect everything visited (Figure 2 / Figure 3 of the paper).
	var visited []metricdb.ItemID
	hooks := metricdb.Hooks{
		Proc2: func(obj metricdb.Item, answers []metricdb.Answer) {
			visited = append(visited, obj.ID)
		},
		Filter: func(obj metricdb.Item, answers []metricdb.Answer) []metricdb.ItemID {
			var next []metricdb.ItemID
			for _, a := range answers {
				if a.Dist <= 0.05 { // only near-duplicates
					next = append(next, a.ID)
				}
			}
			return next
		},
		Condition: func(controlLen, step int) bool { return controlLen > 0 && step < 200 },
	}
	es, err := db.ExploreMultiple([]metricdb.ItemID{0}, metricdb.KNNQuery(20), 25, hooks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("custom exploration from image 0: visited %d similar images in %d steps\n", len(visited), es.Steps)
	fmt.Printf("  cost: %d pages, %d distance calcs (%d avoided)\n",
		es.Query.PagesRead, es.Query.TotalDistCalcs(), es.Query.Avoided)
}
