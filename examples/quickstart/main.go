// Quickstart: open a metric database, run single similarity queries, then
// run the same queries as one multiple similarity query and compare the
// cost — the paper's core idea in thirty lines.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"metricdb"
)

func main() {
	// A small synthetic database: 10,000 points in 8-d space.
	rng := rand.New(rand.NewSource(1))
	vectors := make([]metricdb.Vector, 10000)
	for i := range vectors {
		v := make(metricdb.Vector, 8)
		for j := range v {
			v[j] = rng.Float64()
		}
		vectors[i] = v
	}
	items := metricdb.NewItems(vectors)

	db, err := metricdb.Open(items, metricdb.Options{Engine: metricdb.EngineScan})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database: %d items on %d pages (%s engine)\n\n", db.Len(), db.NumPages(), db.Engine())

	// One single 10-NN query (Figure 1 of the paper).
	answers, stats, err := db.Query(items[42].Vec, metricdb.KNNQuery(10))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("single 10-NN query for object 42:")
	for _, a := range answers[:3] {
		fmt.Printf("  item %-5d dist %.4f\n", a.ID, a.Dist)
	}
	fmt.Printf("  ... cost: %d pages, %d distance calcs\n\n", stats.PagesRead, stats.DistCalcs)

	// Twenty queries, first as independent singles...
	queries := make([]metricdb.Query, 20)
	for i := range queries {
		it := items[i*311]
		queries[i] = metricdb.Query{ID: uint64(it.ID), Vec: it.Vec, Type: metricdb.KNNQuery(10)}
	}
	db.ResetCounters()
	var singleCost metricdb.Stats
	for _, q := range queries {
		_, st, err := db.Query(q.Vec, q.Type)
		if err != nil {
			log.Fatal(err)
		}
		singleCost = singleCost.Add(st)
	}

	// ...then as one multiple similarity query (Definition 4 / Figure 4).
	db.ResetCounters()
	_, multiCost, err := db.NewBatch().QueryAll(queries)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("twenty 10-NN queries:")
	fmt.Printf("  as single queries:   %5d pages, %7d distance calcs\n",
		singleCost.PagesRead, singleCost.DistCalcs)
	fmt.Printf("  as multiple query:   %5d pages, %7d distance calcs (+%d for the query-distance matrix, %d avoided)\n",
		multiCost.PagesRead, multiCost.DistCalcs, multiCost.MatrixDistCalcs, multiCost.Avoided)
	fmt.Printf("  I/O reduction: %.1fx   CPU reduction: %.1fx\n",
		float64(singleCost.PagesRead)/float64(multiCost.PagesRead),
		float64(singleCost.DistCalcs)/float64(multiCost.DistCalcs))
}
