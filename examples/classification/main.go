// Simultaneous classification of a set of objects — the paper's astronomy
// use case (§3.2): all stars observed during the night are classified the
// next day by one k-NN query each, processed in blocks of multiple
// similarity queries.
package main

import (
	"fmt"
	"log"

	"metricdb"
	"metricdb/internal/dataset"
)

func main() {
	// The "catalogue": labeled objects from five star classes
	// (a clustered mixture stands in for real star features).
	catalogue, err := dataset.Clustered(dataset.ClusteredConfig{
		Seed: 7, N: 30000, Dim: 20, Clusters: 5, Spread: 0.04,
	})
	if err != nil {
		log.Fatal(err)
	}
	db, err := metricdb.Open(catalogue, metricdb.Options{Engine: metricdb.EngineXTree})
	if err != nil {
		log.Fatal(err)
	}

	// "Tonight's observations": perturbed versions of known objects, so
	// we can score the classifier.
	const observations = 500
	newStars := make([]metricdb.Vector, observations)
	truth := make([]int, observations)
	for i := 0; i < observations; i++ {
		src := catalogue[(i*53)%len(catalogue)]
		v := src.Vec.Clone()
		for j := range v {
			v[j] += 0.002 * float64(j%3)
		}
		newStars[i] = v
		truth[i] = src.Label
	}

	const k = 10
	for _, batch := range []int{1, 25, 100} {
		db.ResetCounters()
		labels, stats, err := db.ClassifyKNN(newStars, k, batch)
		if err != nil {
			log.Fatal(err)
		}
		correct := 0
		for i := range labels {
			if labels[i] == truth[i] {
				correct++
			}
		}
		fmt.Printf("batch m=%3d: %d/%d correct, %6d pages read, %9d distance calcs, %9d avoided\n",
			batch, correct, observations, stats.Query.PagesRead,
			stats.Query.TotalDistCalcs(), stats.Query.Avoided)
	}
	fmt.Println("\nlarger multiple-query batches classify the same objects with much less I/O and CPU")
}
