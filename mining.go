package metricdb

import (
	"metricdb/internal/explore"
	"metricdb/internal/query"
)

// exploreConfig builds the framework configuration for this database.
func (db *DB) exploreConfig(t QueryType, batchSize int) explore.Config {
	return explore.Config{
		Proc:      db.proc,
		Items:     db.items,
		SimType:   t,
		BatchSize: batchSize,
	}
}

// Explore runs the ExploreNeighborhoods scheme (Figure 2): starting from
// the given objects, neighborhoods of type t are retrieved iteratively and
// the hooks decide what to process and which answers become new query
// objects. Queries are issued one at a time.
func (db *DB) Explore(start []ItemID, t QueryType, hooks Hooks) (ExploreStats, error) {
	return explore.Run(db.exploreConfig(t, 0), start, hooks)
}

// ExploreMultiple runs the transformed ExploreNeighborhoodsMultiple scheme
// (Figure 3): identical results, but up to batchSize pending query objects
// are evaluated together as one multiple similarity query per step.
func (db *DB) ExploreMultiple(start []ItemID, t QueryType, batchSize int, hooks Hooks) (ExploreStats, error) {
	return explore.RunMultiple(db.exploreConfig(t, batchSize), start, hooks)
}

// DBSCAN clusters the database with density parameters eps and minPts,
// issuing its neighborhood queries as multiple similarity queries of the
// given batch size (values below 2 disable batching).
func (db *DB) DBSCAN(eps float64, minPts, batchSize int) (*DBSCANResult, error) {
	return explore.DBSCAN(db.exploreConfig(query.Type{}, batchSize), eps, minPts)
}

// ClassifyKNN assigns each object the majority label of its k nearest
// database neighbors — the simultaneous-classification workload. Queries
// run in blocks of batchSize.
func (db *DB) ClassifyKNN(objects []Vector, k, batchSize int) ([]int, ExploreStats, error) {
	return explore.ClassifyKNN(db.exploreConfig(query.Type{}, batchSize), objects, k)
}

// SimulateExploration runs the manual-data-exploration workload of the
// paper's evaluation: ec.Users concurrent users each follow ec.Rounds
// navigation steps; every round prefetches the k-NN of all current answers
// as one block of multiple similarity queries.
func (db *DB) SimulateExploration(ec ExplorationConfig) (ExploreStats, error) {
	return explore.SimulateExploration(db.exploreConfig(query.Type{}, 0), ec)
}

// ProximityTopK returns the k database objects closest to the given
// cluster (minimum distance to any member, members excluded).
func (db *DB) ProximityTopK(cluster []ItemID, k, batchSize int) ([]Answer, ExploreStats, error) {
	return explore.ProximityTopK(db.exploreConfig(query.Type{}, batchSize), cluster, k)
}

// CommonFeatures analyzes the given objects and flags dimensions whose
// spread is below ratio times the database-wide spread.
func (db *DB) CommonFeatures(ids []ItemID, ratio float64) ([]Feature, error) {
	return explore.CommonFeatures(db.items, ids, ratio)
}

// DetectTrends grows neighborhood paths from start and reports paths along
// which attr changes regularly (spatial trend detection).
func (db *DB) DetectTrends(start ItemID, attr func(Item) float64, tc TrendConfig, batchSize int) ([]Trend, ExploreStats, error) {
	return explore.DetectTrends(db.exploreConfig(query.Type{}, batchSize), start, attr, tc)
}

// AssociationRules discovers spatial association rules fromType → X over
// eps-neighborhoods, keeping rules meeting both thresholds.
func (db *DB) AssociationRules(fromType int, eps, minSupport, minConfidence float64, batchSize int) ([]Rule, ExploreStats, error) {
	return explore.SpatialAssociationRules(db.exploreConfig(query.Type{}, batchSize), fromType, eps, minSupport, minConfidence)
}
